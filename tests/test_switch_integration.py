"""Integration tests for the switch pipeline: flooding, PFC
backpressure, watchdog, ECMP spreading, TTL."""

import pytest

from repro.rdma import QpConfig, connect_qp_pair, post_send
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.buffer import BufferConfig
from repro.switch.watchdog import SwitchWatchdogConfig
from repro.topo import single_switch, two_tier
from repro.workloads import ClosedLoopSender, RdmaChannel


def shallow_buffer():
    return BufferConfig(alpha=None, xoff_static_bytes=48 * KB)


class TestPfcBackpressure:
    def test_incast_pauses_senders_not_drops(self):
        topo = single_switch(n_hosts=4, buffer_config=shallow_buffer()).boot()
        rng = SeededRng(1, "bp")
        victim = topo.hosts[0]
        senders = []
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            senders.append(ClosedLoopSender(RdmaChannel(qp), 512 * KB).start())
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert topo.tor.pause_frames_sent() > 0
        assert topo.fabric.total_drops() == 0
        # Sender NIC ports saw the pauses.
        paused_hosts = [h for h in topo.hosts[1:] if h.nic.port.stats.pause_rx > 0]
        assert paused_hosts

    def test_headroom_absorbs_in_flight(self):
        # The whole point of headroom: zero lossless loss even at XOFF.
        topo = single_switch(n_hosts=4, buffer_config=shallow_buffer()).boot()
        rng = SeededRng(2, "hr")
        victim = topo.hosts[0]
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert topo.tor.counters.drops["buffer-headroom-overflow"] == 0

    def test_buffer_drains_to_zero_after_traffic(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(3, "drain")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        post_send(qp, 1 * MB)
        topo.sim.run(until=topo.sim.now + 10 * MS)
        assert topo.tor.buffer.total_occupancy == 0
        assert topo.tor.buffer.shared_in_use == 0


class TestFlooding:
    def _flooded_topo(self):
        topo = single_switch(n_hosts=3, buffer_config=shallow_buffer()).boot()
        rng = SeededRng(4, "flood")
        dead = topo.hosts[1]
        qp, _ = connect_qp_pair(topo.hosts[0], dead, rng)
        dead.die()
        topo.tor.tables.mac_table.expire(dead.mac)
        post_send(qp, 64 * KB)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        return topo

    def test_incomplete_arp_floods_to_other_servers(self):
        topo = self._flooded_topo()
        assert topo.tor.counters.flood_events > 0
        # The innocent third server received (and discarded) copies.
        bystander = topo.hosts[2]
        assert bystander.nic.stats.rx_dropped_mac > 0

    def test_flood_copies_share_one_buffer_claim(self):
        topo = self._flooded_topo()
        assert topo.tor.buffer.total_occupancy == 0  # all claims released

    def test_arp_drop_policy_stops_flooding(self):
        topo = single_switch(
            n_hosts=3,
            buffer_config=shallow_buffer(),
            forwarding_kwargs={"drop_lossless_on_incomplete_arp": True},
        ).boot()
        rng = SeededRng(4, "noflood")
        dead = topo.hosts[1]
        qp, _ = connect_qp_pair(topo.hosts[0], dead, rng)
        dead.die()
        topo.tor.tables.mac_table.expire(dead.mac)
        post_send(qp, 64 * KB)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert topo.tor.counters.flood_events == 0
        assert topo.tor.counters.drops["incomplete-arp-lossless"] > 0


class TestSwitchWatchdog:
    def _storming_setup(self):
        topo = single_switch(n_hosts=3, buffer_config=shallow_buffer()).boot()
        topo.tor.enable_storm_watchdog(
            SwitchWatchdogConfig(poll_interval_ns=200 * US, reenable_after_ns=2 * MS)
        )
        rng = SeededRng(5, "wdog")
        victim = topo.hosts[0]
        qp, _ = connect_qp_pair(topo.hosts[1], victim, rng)
        ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()
        return topo, victim

    def test_trips_on_storming_nic(self):
        topo, victim = self._storming_setup()
        victim.nic.config.watchdog_config.enabled = False  # isolate switch side
        victim.nic._watchdog.cancel()
        victim.nic.break_rx_pipeline()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        watchdog = topo.tor._watchdogs[victim.port.peer.index]
        assert watchdog.trips >= 1
        assert topo.tor.counters.drops["watchdog-lossless"] > 0

    def test_reenables_after_pauses_stop(self):
        # "Once the switch detects that the pause frames from the NIC
        # disappear for a period of time ... it will re-enable the
        # lossless mode" -- the switch watchdog re-arms, the NIC's not.
        topo, victim = self._storming_setup()
        victim.nic.config.watchdog_config.enabled = False
        victim.nic._watchdog.cancel()
        victim.nic.break_rx_pipeline()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        victim.nic.repair()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        watchdog = topo.tor._watchdogs[victim.port.peer.index]
        assert watchdog.reenables >= 1
        assert not topo.tor.lossless_disabled(victim.port.peer)

    def test_never_trips_on_healthy_congestion(self):
        # Ordinary incast pause activity must not trip the watchdog: the
        # port keeps draining.
        topo = single_switch(n_hosts=4, buffer_config=shallow_buffer()).boot()
        topo.tor.enable_storm_watchdog(
            SwitchWatchdogConfig(poll_interval_ns=200 * US, reenable_after_ns=2 * MS)
        )
        rng = SeededRng(6, "healthy")
        victim = topo.hosts[0]
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            ClosedLoopSender(RdmaChannel(qp), 512 * KB).start()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        assert all(w.trips == 0 for w in topo.tor._watchdogs.values())


class TestRoutingBehaviour:
    def test_ecmp_spreads_qps_over_uplinks(self):
        topo = two_tier(n_tors=2, hosts_per_tor=2, n_leaves=4, seed=8).boot()
        rng = SeededRng(8, "ecmp")
        t0_hosts, t1_hosts = topo.hosts_by_tor
        for i in range(16):
            qp, _ = connect_qp_pair(t0_hosts[i % 2], t1_hosts[i % 2], rng)
            post_send(qp, 32 * KB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        tor = topo.tors[0]
        uplink_tx = [
            p.stats.total_tx_packets
            for p in tor.ports
            if not getattr(p, "is_server_facing", False)
        ]
        used = sum(1 for tx in uplink_tx if tx > 0)
        assert used >= 3  # 16 QPs over 4 uplinks: nearly all used

    def test_one_qp_stays_on_one_path(self):
        # In-order delivery: a QP's five-tuple pins it to one uplink.
        topo = two_tier(n_tors=2, hosts_per_tor=1, n_leaves=4, seed=9).boot()
        rng = SeededRng(9, "path")
        qp, _ = connect_qp_pair(topo.hosts_by_tor[0][0], topo.hosts_by_tor[1][0], rng)
        post_send(qp, 256 * KB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        tor = topo.tors[0]
        data_uplinks = [
            p
            for p in tor.ports
            if not getattr(p, "is_server_facing", False) and p.stats.tx_packets[3] > 0
        ]
        assert len(data_uplinks) == 1
        assert qp.stats.retransmitted_packets == 0  # never reordered

    @staticmethod
    def _raw_packet(src_host, dst_ip, ttl=64):
        from repro.packets import Ipv4Header, Packet, UdpHeader
        from repro.packets.rocev2 import BaseTransportHeader, BthOpcode, ROCEV2_UDP_PORT

        return Packet.rocev2(
            dst_mac=0xDEAD,
            src_mac=src_host.mac,
            ip=Ipv4Header(src=src_host.ip, dst=dst_ip, dscp=3, ttl=ttl),
            udp=UdpHeader(src_port=50000, dst_port=ROCEV2_UDP_PORT),
            bth=BaseTransportHeader(opcode=BthOpcode.SEND_ONLY, dest_qp=1, psn=0),
            payload_bytes=512,
        )

    def test_ttl_expiry_drops(self):
        topo = single_switch(n_hosts=2).boot()
        packet = self._raw_packet(topo.hosts[0], topo.hosts[1].ip, ttl=1)
        topo.hosts[0].nic.port.enqueue(packet, 3)
        topo.sim.run(until=topo.sim.now + 1 * MS)
        assert topo.tor.counters.drops["ttl"] == 1

    def test_no_route_counted(self):
        topo = single_switch(n_hosts=2).boot()
        packet = self._raw_packet(topo.hosts[0], 0x7F000001)  # no route
        topo.hosts[0].nic.port.enqueue(packet, 3)
        topo.sim.run(until=topo.sim.now + 1 * MS)
        assert topo.tor.counters.drops["no-route"] == 1
