"""Unit tests for forwarding tables, ARP/MAC aging, ECMP and ECN."""

import pytest

from repro.packets.ip import ip_from_str
from repro.sim import SeededRng, Simulator
from repro.sim.units import KB, SEC
from repro.switch.ecmp import ecmp_hash, ecmp_select
from repro.switch.ecn import EcnConfig
from repro.switch.forwarding import (
    ARP_TIMEOUT_NS,
    MAC_TIMEOUT_NS,
    AgingTable,
    ForwardDecision,
    ForwardingTables,
)


class TestAgingTable:
    def test_lookup_before_expiry(self):
        sim = Simulator()
        table = AgingTable(sim, timeout_ns=1000, name="t")
        table.learn("k", 42)
        assert table.lookup("k") == 42

    def test_expires_after_timeout(self):
        sim = Simulator()
        table = AgingTable(sim, timeout_ns=1000, name="t")
        table.learn("k", 42)
        sim.run(until=1000)
        assert table.lookup("k") is None

    def test_refresh_extends_lifetime(self):
        sim = Simulator()
        table = AgingTable(sim, timeout_ns=1000, name="t")
        table.learn("k", 42)
        sim.run(until=900)
        table.learn("k", 42)
        sim.run(until=1500)
        assert table.lookup("k") == 42

    def test_admin_expire(self):
        sim = Simulator()
        table = AgingTable(sim, timeout_ns=10**12, name="t")
        table.learn("k", 42)
        table.expire("k")
        assert table.lookup("k") is None

    def test_paper_timeout_disparity(self):
        # Section 4.2: ARP 4 hours, MAC 5 minutes -- a 48x gap.
        assert ARP_TIMEOUT_NS == 4 * 3600 * SEC
        assert MAC_TIMEOUT_NS == 5 * 60 * SEC
        assert ARP_TIMEOUT_NS // MAC_TIMEOUT_NS == 48


class TestForwardingDecisions:
    def _tor(self, **kwargs):
        sim = Simulator()
        subnet = (ip_from_str("10.1.0.0"), 24)
        tables = ForwardingTables(sim, local_subnet=subnet, **kwargs)
        return sim, tables

    def test_l3_route_longest_prefix_wins(self):
        sim, tables = self._tor()
        tables.add_route(ip_from_str("10.0.0.0"), 8, [1])
        tables.add_route(ip_from_str("10.2.0.0"), 16, [2])
        decision = tables.decide(ip_from_str("10.2.3.4"), lossless=True)
        assert decision.action == ForwardDecision.FORWARD
        assert decision.ports == [2]

    def test_no_route_drops(self):
        sim, tables = self._tor()
        decision = tables.decide(ip_from_str("192.168.0.1"), lossless=True)
        assert decision.action == ForwardDecision.DROP
        assert tables.no_route_drops == 1

    def test_local_delivery_needs_arp_and_mac(self):
        sim, tables = self._tor()
        ip = ip_from_str("10.1.0.5")
        tables.learn_arp(ip, 0xAA)
        tables.learn_mac(0xAA, 7)
        decision = tables.decide(ip, lossless=True)
        assert decision.action == ForwardDecision.FORWARD
        assert decision.ports == [7]

    def test_arp_miss_drops(self):
        sim, tables = self._tor()
        decision = tables.decide(ip_from_str("10.1.0.9"), lossless=True)
        assert decision.action == ForwardDecision.DROP
        assert decision.reason == "arp-miss"

    def test_incomplete_arp_floods(self):
        # The deadlock root cause: ARP alive, MAC expired -> flood.
        sim, tables = self._tor()
        ip = ip_from_str("10.1.0.5")
        tables.learn_arp(ip, 0xAA)
        tables.learn_mac(0xAA, 7)
        tables.mac_table.expire(0xAA)
        decision = tables.decide(ip, lossless=True)
        assert decision.action == ForwardDecision.FLOOD
        assert tables.floods == 1

    def test_incomplete_arp_drop_policy_for_lossless(self):
        # The paper's fix (option 3): drop lossless packets instead.
        sim, tables = self._tor(drop_lossless_on_incomplete_arp=True)
        ip = ip_from_str("10.1.0.5")
        tables.learn_arp(ip, 0xAA)
        decision = tables.decide(ip, lossless=True)
        assert decision.action == ForwardDecision.DROP
        assert decision.reason == "incomplete-arp-lossless"
        assert tables.incomplete_arp_drops == 1

    def test_incomplete_arp_drop_policy_spares_lossy(self):
        sim, tables = self._tor(drop_lossless_on_incomplete_arp=True)
        ip = ip_from_str("10.1.0.5")
        tables.learn_arp(ip, 0xAA)
        decision = tables.decide(ip, lossless=False)
        assert decision.action == ForwardDecision.FLOOD

    def test_mac_timeout_recreates_flooding_over_time(self):
        sim, tables = self._tor()
        ip = ip_from_str("10.1.0.5")
        tables.learn_arp(ip, 0xAA)
        tables.learn_mac(0xAA, 7)
        # After 5 minutes of silence the MAC entry is gone; ARP survives.
        sim.run(until=MAC_TIMEOUT_NS)
        decision = tables.decide(ip, lossless=True)
        assert decision.action == ForwardDecision.FLOOD


class TestEcmp:
    def test_deterministic(self):
        tup = (1, 2, 17, 1000, 4791)
        assert ecmp_hash(tup) == ecmp_hash(tup)
        assert ecmp_select(tup, 16) == ecmp_select(tup, 16)

    def test_different_source_ports_spread(self):
        # RoCEv2's whole reason for UDP: per-QP source ports spread flows.
        choices = {
            ecmp_select((1, 2, 17, sport, 4791), 16) for sport in range(49152, 49352)
        }
        assert len(choices) >= 12

    def test_seed_decorrelates_switches(self):
        tuples = [(1, 2, 17, sport, 4791) for sport in range(49152, 49252)]
        same = sum(
            1
            for t in tuples
            if ecmp_select(t, 16, seed=1) == ecmp_select(t, 16, seed=2)
        )
        assert same < 30  # mostly different decisions

    def test_single_choice_shortcut(self):
        assert ecmp_select((1, 2, 17, 5, 5), 1) == 0

    def test_no_choices_rejected(self):
        with pytest.raises(ValueError):
            ecmp_select((1, 2, 17, 5, 5), 0)


class TestEcn:
    def test_no_marking_below_kmin(self):
        config = EcnConfig(kmin_bytes=40 * KB, kmax_bytes=160 * KB, pmax=0.1)
        assert config.mark_probability(10 * KB) == 0.0

    def test_always_mark_above_kmax(self):
        config = EcnConfig(kmin_bytes=40 * KB, kmax_bytes=160 * KB, pmax=0.1)
        assert config.mark_probability(200 * KB) == 1.0

    def test_linear_ramp_between(self):
        config = EcnConfig(kmin_bytes=40 * KB, kmax_bytes=160 * KB, pmax=0.1)
        mid = config.mark_probability(100 * KB)
        assert mid == pytest.approx(0.05, rel=0.01)

    def test_should_mark_uses_rng(self):
        config = EcnConfig(kmin_bytes=0, kmax_bytes=100, pmax=1.0)
        rng = SeededRng(1, "ecn")
        assert config.should_mark(200, rng)
        assert not config.should_mark(0, rng)

    def test_disabled_never_marks(self):
        config = EcnConfig(enabled=False)
        assert config.mark_probability(10**9) == 0.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            EcnConfig(kmin_bytes=10, kmax_bytes=5)
        with pytest.raises(ValueError):
            EcnConfig(pmax=1.5)
