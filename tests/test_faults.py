"""Fault injection + runtime invariant auditors.

The `faults` lane: every section 4 pathology expressed as a declarative
:class:`FaultPlan` run under the invariant auditors, plus unit coverage
of the injector mechanisms and auditor self-tests (an auditor that can
never fire is worse than none -- each one is shown to catch a seeded
corruption).

Run alone with ``pytest -m faults``.
"""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultScenario,
    InvariantViolation,
    expect_invariant_holds,
    expect_invariant_violated,
    expect_nic_watchdog,
    expect_that,
    install_default_auditors,
)
from repro.monitoring.config_mgmt import ConfigMonitor, DesiredConfig
from repro.nic.nic import NicConfig, NicWatchdogConfig
from repro.rdma import QpConfig, connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.buffer import BufferConfig
from repro.switch.pfc import PfcConfig
from repro.topo import deadlock_quad, single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel
from tests.strategies import drive_incast as _incast

pytestmark = pytest.mark.faults


# --- injector mechanisms ------------------------------------------------------


class TestInjector:
    def test_flap_restores_link_and_counts_once(self):
        topo = single_switch(n_hosts=2, seed=3).boot()
        injector = FaultInjector(topo.fabric)
        link = injector.flap_link(("S0", "T0"), down_ns=200 * US)
        assert not link.up
        topo.sim.run(until=topo.sim.now + 500 * US)
        assert link.up
        assert link.flaps == 1

    def test_resolve_link_accepts_host_or_nic_names(self):
        topo = single_switch(n_hosts=2, seed=3).boot()
        injector = FaultInjector(topo.fabric)
        by_host = injector.resolve_link(("S1", "T0"))
        by_nic = injector.resolve_link(("S1.nic", "T0"))
        assert by_host is by_nic
        with pytest.raises(KeyError):
            injector.resolve_link(("S0", "S1"))  # hosts share no link

    def test_drop_rule_hits_are_seed_deterministic(self):
        def run(seed):
            topo = single_switch(n_hosts=2, seed=5).boot()
            injector = FaultInjector(topo.fabric, rng=SeededRng(seed, "inj"))
            rule = injector.drop_packets(("S0", "T0"), probability=0.05, match="data")
            _incast(topo, 1, SeededRng(5, "traffic"))
            topo.sim.run(until=topo.sim.now + 2 * MS)
            link = injector.resolve_link(("S0", "T0"))
            return rule.hits, link.injected_drops

        first = run(11)
        assert first == run(11)
        assert first[0] > 0
        assert first != run(12)

    def test_corrupt_counts_separately_from_drops(self):
        topo = single_switch(n_hosts=2, seed=5).boot()
        injector = FaultInjector(topo.fabric)
        injector.corrupt_packets(("S0", "T0"), probability=1.0, match="data", count=5)
        _incast(topo, 1, SeededRng(5, "traffic"))
        topo.sim.run(until=topo.sim.now + 2 * MS)
        link = injector.resolve_link(("S0", "T0"))
        assert link.corrupted == 5
        assert link.injected_drops == 0

    def test_reorder_delays_matching_frames(self):
        topo = single_switch(n_hosts=2, seed=5).boot()
        injector = FaultInjector(topo.fabric)
        injector.reorder_packets(("S0", "T0"), delay_ns=5000, probability=0.1)
        _incast(topo, 1, SeededRng(5, "traffic"))
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert injector.resolve_link(("S0", "T0")).reordered > 0

    def test_count_limited_rule_exhausts(self):
        topo = single_switch(n_hosts=2, seed=5).boot()
        injector = FaultInjector(topo.fabric)
        rule = injector.drop_packets(("S0", "T0"), match="data", count=3)
        _incast(topo, 1, SeededRng(5, "traffic"))
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert rule.hits == 3
        assert rule.remaining == 0

    def test_unknown_matcher_rejected(self):
        topo = single_switch(n_hosts=2, seed=3).boot()
        injector = FaultInjector(topo.fabric)
        with pytest.raises(ValueError):
            injector.drop_packets(("S0", "T0"), match="everything")

    def test_clear_link_faults_removes_rules(self):
        topo = single_switch(n_hosts=2, seed=5).boot()
        injector = FaultInjector(topo.fabric)
        injector.drop_packets(("S0", "T0"), match="data")
        link = injector.clear_link_faults(("S0", "T0"))
        assert link.fault_hook is None
        _incast(topo, 1, SeededRng(5, "traffic"))
        topo.sim.run(until=topo.sim.now + 1 * MS)
        assert link.injected_drops == 0

    def test_injector_log_records_actions_with_times(self):
        topo = single_switch(n_hosts=2, seed=3).boot()
        injector = FaultInjector(topo.fabric)
        injector.freeze_nic_rx("S0")
        topo.sim.run(until=topo.sim.now + 1 * MS)
        injector.repair_nic("S0")
        actions = [(action, subject) for _t, action, subject in injector.log]
        assert actions == [("freeze_nic_rx", "S0"), ("repair_nic", "S0")]
        assert injector.log[1][0] > injector.log[0][0]

    def test_plan_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            FaultPlan("bad").add("set_on_fire", "T0")


# --- auditors: clean runs and self-tests --------------------------------------


class TestAuditors:
    def test_fault_free_incast_is_clean_under_strict_audit(self):
        topo = single_switch(
            n_hosts=4,
            seed=7,
            buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
        ).boot()
        registry = install_default_auditors(topo.fabric, mode="raise").start()
        _incast(topo, 3, SeededRng(7, "clean"))
        topo.sim.run(until=topo.sim.now + 3 * MS)  # raises on any violation
        assert registry.ticks >= 25
        assert registry.clean

    def test_buffer_auditor_catches_phantom_admission(self):
        # Self-test: account bytes the queues do not hold.
        topo = single_switch(n_hosts=2, seed=7).boot()
        registry = install_default_auditors(topo.fabric)
        assert registry.audit_now() == []
        topo.tor.buffer.admit(0, 3, 1000, lossless=True)
        violations = registry.audit_now()
        assert registry.violations_for("buffer-conservation")
        assert any("1000B" in v.detail or "1000" in v.detail for v in violations)

    def test_nic_auditor_catches_counter_tamper(self):
        topo = single_switch(n_hosts=2, seed=7).boot()
        registry = install_default_auditors(topo.fabric)
        topo.hosts[0].nic._rx_bytes += 64
        registry.audit_now()
        assert registry.violations_for("nic-rx-conservation")

    def test_raise_mode_raises_on_first_violation(self):
        topo = single_switch(n_hosts=2, seed=7).boot()
        registry = install_default_auditors(topo.fabric, mode="raise")
        topo.tor.buffer.admit(0, 3, 1000, lossless=True)
        with pytest.raises(InvariantViolation):
            registry.audit_now()

    def test_audit_never_perturbs_model_state(self):
        # The same traffic with and without auditors must produce
        # identical model counters (the tick reads, never writes).
        def model_digest(audited):
            topo = single_switch(n_hosts=3, seed=9).boot()
            if audited:
                install_default_auditors(topo.fabric).start()
            rng = SeededRng(9, "noperturb")
            victim = topo.hosts[0]
            qps = []
            for src in topo.hosts[1:]:
                qp, _ = connect_qp_pair(src, victim, rng)
                qps.append(qp)
                ClosedLoopSender(RdmaChannel(qp), 128 * KB).start()
            topo.sim.run(until=topo.sim.now + 3 * MS)
            return (
                topo.tor.pause_frames_sent(),
                tuple(qp.stats.data_packets_sent for qp in qps),
                tuple(qp.stats.bytes_completed for qp in qps),
                topo.tor.buffer.peak_shared_in_use,
            )

        assert model_digest(audited=True) == model_digest(audited=False)


# --- the section 4 pathologies as declarative scenarios -----------------------


def _storm_build(watchdog):
    def build():
        return single_switch(
            n_hosts=3,
            seed=13,
            nic_config=NicConfig(watchdog_config=watchdog),
            buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
        ).boot()

    return build


def _storm_drive(topo):
    _incast(topo, 2, SeededRng(13, "storm"))


class TestPathologyScenarios:
    def test_pause_storm_without_watchdog_trips_pause_liveness(self):
        FaultScenario(
            build=_storm_build(NicWatchdogConfig(enabled=False)),
            plan=FaultPlan("storm", seed=13).freeze_nic_rx("S0", at_ns=1 * MS),
            drive=_storm_drive,
            duration_ns=8 * MS,
            expectations=[
                expect_invariant_violated("pause-bounded"),
                expect_that(
                    "victim NIC still pouring pauses",
                    lambda o: o.fabric.host_named("S0").nic.stats.pause_generated > 10,
                ),
            ],
        ).run().check()

    def test_pause_storm_with_nic_watchdog_stays_clean(self):
        FaultScenario(
            build=_storm_build(
                NicWatchdogConfig(stall_threshold_ns=1 * MS, poll_interval_ns=250 * US)
            ),
            plan=FaultPlan("storm-wd", seed=13).freeze_nic_rx("S0", at_ns=1 * MS),
            drive=_storm_drive,
            duration_ns=8 * MS,
            max_stall_ns=3 * MS,  # liveness bound above the watchdog's reaction
            expectations=[expect_invariant_holds(), expect_nic_watchdog()],
        ).run().check()

    def _deadlock_scenario(self, fixed):
        def build():
            return deadlock_quad(
                seed=11,
                buffer_config=BufferConfig(
                    alpha=None,
                    xoff_static_bytes=96 * KB,
                    headroom_per_pg_bytes=40 * KB,
                ),
                forwarding_kwargs={"drop_lossless_on_incomplete_arp": fixed},
            ).boot()

        def drive(topo):
            rng = SeededRng(11, "dl")
            hosts = topo.hosts

            def saturate(src, dst):
                config = QpConfig(window_packets=1024, rto_ns=300 * US)
                qp, _ = connect_qp_pair(
                    hosts[src], hosts[dst], rng, config_a=config, config_b=config
                )
                ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()

            saturate("S1", "S3")
            saturate("S6", "S3")
            saturate("S1", "S5")
            saturate("S7", "S5")
            saturate("S4", "S2")

        # Figure 4 as data: the dead servers and their half-expired
        # forwarding state are plan entries, not bespoke setup code.
        after_boot = 100 * US + 1
        plan = (
            FaultPlan("figure4", seed=11)
            .kill_host("S3", at_ns=after_boot)
            .kill_host("S2", at_ns=after_boot)
            .expire_mac("S3", at_ns=after_boot)
            .expire_mac("S2", at_ns=after_boot)
        )
        return plan, build, drive

    def test_deadlock_plan_floods_into_a_pause_loop(self):
        from repro.core.deadlock import detect_deadlock

        plan, build, drive = self._deadlock_scenario(fixed=False)
        FaultScenario(
            build=build,
            plan=plan,
            drive=drive,
            duration_ns=8 * MS,
            expectations=[
                expect_invariant_violated("pause-bounded"),
                expect_that(
                    "wait-for graph has a cycle",
                    lambda o: detect_deadlock(
                        [o.topo.t0, o.topo.t1, o.topo.la, o.topo.lb]
                    ).deadlocked,
                ),
            ],
        ).run().check()

    def test_deadlock_plan_with_arp_drop_fix_stays_clean(self):
        from repro.core.deadlock import detect_deadlock

        plan, build, drive = self._deadlock_scenario(fixed=True)
        FaultScenario(
            build=build,
            plan=plan,
            drive=drive,
            duration_ns=8 * MS,
            expectations=[
                expect_invariant_holds(),
                expect_that(
                    "no cycle in the wait-for graph",
                    lambda o: not detect_deadlock(
                        [o.topo.t0, o.topo.t1, o.topo.la, o.topo.lb]
                    ).deadlocked,
                ),
            ],
        ).run().check()

    def test_slow_receiver_backpressures_but_breaks_nothing(self):
        def build():
            return single_switch(
                n_hosts=4,
                seed=17,
                buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
            ).boot()

        FaultScenario(
            build=build,
            plan=FaultPlan("slowrx", seed=17).degrade_mtt(
                "S0", at_ns=2 * MS, entries=32, miss_penalty_ns=4000
            ),
            drive=lambda topo: _incast(topo, 3, SeededRng(17, "slowrx")),
            duration_ns=8 * MS,
            expectations=[
                expect_invariant_holds(),
                expect_that(
                    "the degraded NIC paused its switch",
                    lambda o: o.fabric.host_named("S0").nic.stats.pause_generated > 0,
                ),
                expect_that(
                    "the MTT actually thrashed",
                    lambda o: o.fabric.host_named("S0").nic.mtt.misses > 0,
                ),
            ],
        ).run().check()


# --- an unscripted combination ------------------------------------------------


class TestConfigDriftCombos:
    def test_dscp_drift_plus_link_flap_completes_under_audit(self):
        # Not one of the paper's four pathologies: a switch drifts onto a
        # wrong DSCP->queue map *and* a server link flaps mid-run.  The
        # run must simply complete with buffer/rx conservation intact,
        # and the config monitor must localize the drift.
        desired_map = {24: 3, 46: 4}
        topo = single_switch(
            n_hosts=3,
            seed=19,
            pfc_config=PfcConfig(dscp_to_priority=dict(desired_map)),
        ).boot()
        registry = install_default_auditors(topo.fabric).start()
        plan = (
            FaultPlan("drift+flap", seed=19)
            .drift_dscp_map("T0", {24: 0, 46: 0}, at_ns=1 * MS)
            .flap_link(("S1", "T0"), at_ns=2 * MS, down_ns=200 * US)
        )
        plan.apply(topo.fabric)
        _incast(topo, 2, SeededRng(19, "combo"))
        topo.sim.run(until=topo.sim.now + 6 * MS)

        assert not registry.violations_for("buffer-conservation")
        assert not registry.violations_for("nic-rx-conservation")
        assert not registry.violations_for("psn-monotonic")

        monitor = ConfigMonitor(
            DesiredConfig(
                priority_mode=topo.tor.pfc_config.priority_mode,
                lossless_priorities=topo.tor.pfc_config.lossless_priorities,
                buffer_alpha=None,
                dscp_to_priority=desired_map,
            )
        )
        drifts = monitor.check_fabric(topo.fabric)
        assert [(d.device, d.field) for d in drifts] == [("T0", "dscp_to_priority")]
        # The shared config object was copied, not mutated in place: the
        # NICs still run the desired map.
        assert all(
            dict(h.nic.pfc_config.dscp_to_priority) == desired_map
            for h in topo.hosts
        )

    def test_buffer_alpha_drift_is_visible_to_the_monitor(self):
        topo = single_switch(n_hosts=2, seed=19).boot()
        injector = FaultInjector(topo.fabric)
        injector.drift_buffer_alpha("T0", 1.0 / 64)
        monitor = ConfigMonitor(
            DesiredConfig(
                priority_mode=topo.tor.pfc_config.priority_mode,
                lossless_priorities=topo.tor.pfc_config.lossless_priorities,
                buffer_alpha=1.0 / 16,
            )
        )
        drifts = monitor.check_switch(topo.tor)
        assert [(d.field, d.running) for d in drifts] == [("buffer_alpha", 1.0 / 64)]
        assert topo.tor.buffer.config.alpha == 1.0 / 64  # live, not just declared
