"""Unit tests for the byte-accurate packet layer."""

import pytest

from repro.packets import (
    Aeth,
    ArpPacket,
    BaseTransportHeader,
    BthOpcode,
    EthernetFrame,
    Ipv4Header,
    Packet,
    PfcPauseFrame,
    PriorityMode,
    TcpHeader,
    UdpHeader,
    VlanTag,
    resolve_priority,
)
from repro.packets.ethernet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_MAC_CONTROL,
    ETHERTYPE_VLAN,
    mac_from_str,
    mac_to_str,
)
from repro.packets.ip import ECN_CE, ECN_ECT0, checksum16, ip_from_str, ip_to_str
from repro.packets.pause import ns_to_pause_quanta, pause_quanta_to_ns
from repro.packets.rocev2 import ROCEV2_UDP_PORT, psn_add, psn_distance
from repro.sim.units import gbps


class TestMacHelpers:
    def test_round_trip(self):
        mac = 0x001122AABBCC
        assert mac_from_str(mac_to_str(mac)) == mac

    def test_render(self):
        assert mac_to_str(0xFFFFFFFFFFFF) == "ff:ff:ff:ff:ff:ff"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            mac_from_str("00:11:22")


class TestVlanTag:
    def test_pack_layout(self):
        tag = VlanTag(pcp=3, dei=1, vid=0x123)
        data = tag.pack()
        assert data[:2] == b"\x81\x00"  # TPID fixed to 0x8100 (paper fig. 3)
        tci = int.from_bytes(data[2:4], "big")
        assert tci >> 13 == 3
        assert (tci >> 12) & 1 == 1
        assert tci & 0xFFF == 0x123

    def test_round_trip(self):
        tag = VlanTag(pcp=7, dei=0, vid=4095)
        assert VlanTag.unpack(tag.pack()) == tag

    def test_field_ranges(self):
        with pytest.raises(ValueError):
            VlanTag(pcp=8)
        with pytest.raises(ValueError):
            VlanTag(vid=4096)
        with pytest.raises(ValueError):
            VlanTag(dei=2)

    def test_priority_and_vid_are_coupled(self):
        # The crux of section 3: you cannot carry a PCP without a VID --
        # the tag always serializes both.
        tag = VlanTag(pcp=3)
        assert len(tag.pack()) == 4
        parsed = VlanTag.unpack(tag.pack())
        assert parsed.pcp == 3
        assert parsed.vid == 0


class TestEthernetFrame:
    def test_untagged_round_trip(self):
        frame = EthernetFrame(
            dst=0x0A0B0C0D0E0F, src=0x010203040506, ethertype=ETHERTYPE_IPV4, payload=b"hello"
        )
        parsed = EthernetFrame.unpack(frame.pack())
        assert parsed.dst == frame.dst
        assert parsed.src == frame.src
        assert parsed.ethertype == ETHERTYPE_IPV4
        assert parsed.payload == b"hello"
        assert not parsed.is_tagged

    def test_tagged_round_trip(self):
        frame = EthernetFrame(
            dst=1, src=2, ethertype=ETHERTYPE_IPV4, payload=b"x" * 46, vlan=VlanTag(pcp=5, vid=7)
        )
        parsed = EthernetFrame.unpack(frame.pack())
        assert parsed.is_tagged
        assert parsed.vlan == VlanTag(pcp=5, vid=7)
        assert parsed.ethertype == ETHERTYPE_IPV4

    def test_sizes(self):
        frame = EthernetFrame(dst=1, src=2, ethertype=ETHERTYPE_IPV4, payload=b"x" * 100)
        assert frame.size_bytes == 14 + 100 + 4
        tagged = EthernetFrame(
            dst=1, src=2, ethertype=ETHERTYPE_IPV4, payload=b"x" * 100, vlan=VlanTag()
        )
        assert tagged.size_bytes == frame.size_bytes + 4
        assert frame.wire_bytes == frame.size_bytes + 20


class TestIpv4Header:
    def test_round_trip(self):
        header = Ipv4Header(
            src=ip_from_str("10.0.0.1"),
            dst=ip_from_str("10.0.1.2"),
            dscp=46,
            ecn=ECN_ECT0,
            total_length=1064,
            identification=0x1234,
            ttl=17,
        )
        parsed = Ipv4Header.unpack(header.pack())
        assert ip_to_str(parsed.src) == "10.0.0.1"
        assert ip_to_str(parsed.dst) == "10.0.1.2"
        assert parsed.dscp == 46
        assert parsed.ecn == ECN_ECT0
        assert parsed.total_length == 1064
        assert parsed.identification == 0x1234
        assert parsed.ttl == 17

    def test_checksum_is_valid(self):
        header = Ipv4Header(src=1, dst=2)
        assert checksum16(header.pack()) == 0

    def test_corrupt_checksum_detected(self):
        data = bytearray(Ipv4Header(src=1, dst=2).pack())
        data[8] ^= 0xFF
        with pytest.raises(ValueError):
            Ipv4Header.unpack(bytes(data))

    def test_ce_marking(self):
        header = Ipv4Header(src=1, dst=2, ecn=ECN_ECT0)
        assert header.ect_capable
        assert not header.ce_marked
        header.mark_ce()
        assert header.ce_marked
        assert header.ecn == ECN_CE

    def test_dscp_range(self):
        with pytest.raises(ValueError):
            Ipv4Header(src=1, dst=2, dscp=64)

    def test_ip_id_is_16_bits(self):
        with pytest.raises(ValueError):
            Ipv4Header(src=1, dst=2, identification=0x10000)


class TestUdpHeader:
    def test_round_trip(self):
        header = UdpHeader(src_port=54321, dst_port=ROCEV2_UDP_PORT, length=1052)
        parsed = UdpHeader.unpack(header.pack())
        assert parsed.src_port == 54321
        assert parsed.dst_port == 4791
        assert parsed.length == 1052

    def test_port_range(self):
        with pytest.raises(ValueError):
            UdpHeader(src_port=70000, dst_port=1)


class TestBth:
    def test_round_trip(self):
        bth = BaseTransportHeader(
            opcode=BthOpcode.SEND_MIDDLE, dest_qp=0x123456, psn=0xABCDEF, ack_req=True
        )
        parsed = BaseTransportHeader.unpack(bth.pack())
        assert parsed.opcode == BthOpcode.SEND_MIDDLE
        assert parsed.dest_qp == 0x123456
        assert parsed.psn == 0xABCDEF
        assert parsed.ack_req

    def test_bth_is_12_bytes(self):
        bth = BaseTransportHeader(opcode=BthOpcode.SEND_ONLY, dest_qp=1, psn=0)
        assert len(bth.pack()) == 12

    def test_psn_is_24_bits(self):
        with pytest.raises(ValueError):
            BaseTransportHeader(opcode=BthOpcode.SEND_ONLY, dest_qp=1, psn=1 << 24)

    def test_opcode_properties(self):
        assert BthOpcode.SEND_LAST.is_last_segment
        assert BthOpcode.RDMA_WRITE_ONLY.is_last_segment
        assert not BthOpcode.SEND_MIDDLE.is_last_segment
        assert not BthOpcode.ACKNOWLEDGE.is_data
        assert not BthOpcode.CNP.is_data
        assert BthOpcode.RDMA_READ_RESPONSE_MIDDLE.is_read_response

    def test_psn_arithmetic_wraps(self):
        assert psn_add(0xFFFFFF, 1) == 0
        assert psn_distance(0, 0xFFFFFF) == 1
        assert psn_distance(5, 2) == 3


class TestAeth:
    def test_ack_round_trip(self):
        aeth = Aeth(syndrome=0, msn=12345)
        parsed = Aeth.unpack(aeth.pack())
        assert not parsed.is_nak
        assert parsed.msn == 12345

    def test_nak_round_trip(self):
        aeth = Aeth(syndrome=0b011, msn=7)
        assert Aeth.unpack(aeth.pack()).is_nak


class TestPfcPauseFrame:
    def test_pause_frame_has_no_vlan_tag(self):
        # Figure 3: "the PFC pause frames do not have a VLAN tag at all."
        packet = Packet.pfc_pause(dst_mac=1, src_mac=2, pause=PfcPauseFrame.pause([3]))
        assert packet.vlan is None
        assert packet.ethertype == ETHERTYPE_MAC_CONTROL

    def test_class_enable_vector(self):
        frame = PfcPauseFrame.pause([0, 3], quanta=100)
        assert frame.class_enable_vector == 0b1001
        assert frame.paused_priorities == [0, 3]

    def test_resume_is_zero_quanta(self):
        frame = PfcPauseFrame.resume([3])
        assert frame.resumed_priorities == [3]
        assert frame.paused_priorities == []
        assert frame.class_enable_vector == 0b1000

    def test_round_trip(self):
        frame = PfcPauseFrame({0: 0xFFFF, 3: 0, 7: 42})
        parsed = PfcPauseFrame.unpack(frame.pack())
        assert parsed.quanta == frame.quanta

    def test_body_padded_to_ethernet_minimum(self):
        assert PfcPauseFrame.pause([0]).size_bytes == 46

    def test_quanta_duration_conversion(self):
        # One quantum = 512 bit-times; at 40 Gb/s that's 12.8 ns.
        assert pause_quanta_to_ns(1000, gbps(40)) == 12_800
        assert ns_to_pause_quanta(12_800, gbps(40)) == 1000

    def test_quanta_clamped_to_16_bits(self):
        assert ns_to_pause_quanta(10**12, gbps(40)) == 0xFFFF

    def test_invalid_priority_rejected(self):
        with pytest.raises(ValueError):
            PfcPauseFrame({8: 1})


class TestArp:
    def test_request_reply_round_trip(self):
        request = ArpPacket.request(sender_mac=0xAA, sender_ip=1, target_ip=2)
        parsed = ArpPacket.unpack(request.pack())
        assert parsed.is_request
        assert parsed.target_ip == 2
        reply = ArpPacket.reply(sender_mac=0xBB, sender_ip=2, target_mac=0xAA, target_ip=1)
        parsed = ArpPacket.unpack(reply.pack())
        assert not parsed.is_request
        assert parsed.sender_mac == 0xBB


class TestTcpHeader:
    def test_round_trip(self):
        header = TcpHeader(src_port=1234, dst_port=80, seq=10**9, ack=42, window=5000)
        parsed = TcpHeader.unpack(header.pack())
        assert parsed.seq == 10**9
        assert parsed.ack == 42
        assert parsed.window == 5000

    def test_flags(self):
        from repro.packets.tcp import FLAG_ACK, FLAG_SYN

        header = TcpHeader(src_port=1, dst_port=2, flags=FLAG_SYN | FLAG_ACK)
        assert header.has(FLAG_SYN)
        assert header.has(FLAG_ACK)


class TestPacketEnvelope:
    def _rocev2_packet(self, payload=1024, vlan=None, dscp=3):
        ip = Ipv4Header(src=1, dst=2, dscp=dscp)
        udp = UdpHeader(src_port=50000, dst_port=ROCEV2_UDP_PORT)
        bth = BaseTransportHeader(opcode=BthOpcode.SEND_ONLY, dest_qp=5, psn=0)
        return Packet.rocev2(
            dst_mac=2, src_mac=1, ip=ip, udp=udp, bth=bth, payload_bytes=payload, vlan=vlan
        )

    def test_paper_frame_size(self):
        # Section 5.4: "The RDMA frame size is 1086 bytes with 1024 bytes as
        # payload": 14 (Eth) + 20 (IP) + 8 (UDP) + 12 (BTH) + 1024 + 4
        # (ICRC) + 4 (FCS) = 1086.
        packet = self._rocev2_packet(payload=1024)
        assert packet.size_bytes == 1086

    def test_rocev2_requires_port_4791(self):
        ip = Ipv4Header(src=1, dst=2)
        udp = UdpHeader(src_port=50000, dst_port=4792)
        bth = BaseTransportHeader(opcode=BthOpcode.SEND_ONLY, dest_qp=5, psn=0)
        with pytest.raises(ValueError):
            Packet.rocev2(dst_mac=2, src_mac=1, ip=ip, udp=udp, bth=bth)

    def test_five_tuple_udp(self):
        packet = self._rocev2_packet()
        assert packet.five_tuple == (1, 2, 17, 50000, 4791)

    def test_five_tuple_tcp(self):
        packet = Packet.tcp_segment(
            dst_mac=2,
            src_mac=1,
            ip=Ipv4Header(src=3, dst=4, protocol=6),
            tcp=TcpHeader(src_port=999, dst_port=80),
        )
        assert packet.five_tuple == (3, 4, 6, 999, 80)

    def test_uids_are_unique(self):
        first = self._rocev2_packet()
        second = self._rocev2_packet()
        assert first.uid != second.uid

    def test_vlan_mode_priority(self):
        packet = self._rocev2_packet(vlan=VlanTag(pcp=3, vid=10))
        assert resolve_priority(packet, PriorityMode.VLAN) == 3

    def test_vlan_mode_untagged_falls_back(self):
        packet = self._rocev2_packet(vlan=None)
        assert resolve_priority(packet, PriorityMode.VLAN, default_priority=0) == 0

    def test_dscp_mode_identity_map(self):
        packet = self._rocev2_packet(dscp=3)
        assert resolve_priority(packet, PriorityMode.DSCP) == 3

    def test_dscp_mode_explicit_map(self):
        packet = self._rocev2_packet(dscp=46)
        mapping = {46: 5}
        assert resolve_priority(packet, PriorityMode.DSCP, dscp_to_priority=mapping) == 5
        assert resolve_priority(packet, PriorityMode.DSCP, dscp_to_priority={}, default_priority=1) == 1

    def test_pause_has_no_priority(self):
        packet = Packet.pfc_pause(dst_mac=1, src_mac=2, pause=PfcPauseFrame.pause([3]))
        with pytest.raises(ValueError):
            resolve_priority(packet, PriorityMode.DSCP)

    def test_same_stream_priority_differs_by_mode(self):
        # Section 3's point: identical packet, different classification
        # depending on whether the fabric reads PCP or DSCP.
        packet = self._rocev2_packet(vlan=VlanTag(pcp=5, vid=9), dscp=3)
        assert resolve_priority(packet, PriorityMode.VLAN) == 5
        assert resolve_priority(packet, PriorityMode.DSCP) == 3

    def test_arp_packet_priority_defaults(self):
        packet = Packet.arp_packet(
            dst_mac=0xFFFFFFFFFFFF, src_mac=1, arp=ArpPacket.request(1, 1, 2)
        )
        assert resolve_priority(packet, PriorityMode.DSCP, default_priority=0) == 0
