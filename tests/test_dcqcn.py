"""Tests for the DCQCN reaction point and the CP/NP/RP loop."""

import pytest

from repro.dcqcn import DcqcnConfig, ReactionPoint, enable_dcqcn
from repro.rdma import QpConfig, connect_qp_pair, post_send
from repro.sim import SeededRng, Simulator
from repro.sim.units import KB, MB, MS, US, gbps
from repro.switch.ecn import EcnConfig
from repro.topo import single_switch


class TestReactionPoint:
    def make_rp(self, **kwargs):
        sim = Simulator()
        return sim, ReactionPoint(sim, line_rate_bps=gbps(40), config=DcqcnConfig(**kwargs))

    def test_starts_at_line_rate(self):
        sim, rp = self.make_rp()
        assert rp.rate_bps == gbps(40)
        assert rp.at_line_rate

    def test_cnp_cuts_rate_multiplicatively(self):
        sim, rp = self.make_rp()
        rp.on_cnp()
        # alpha starts at 1: first cut is RC * (1 - 1/2).
        assert rp.rate_bps == pytest.approx(gbps(20), rel=0.01)
        assert rp.rt == pytest.approx(gbps(40), rel=0.01)

    def test_alpha_rises_on_cnp_falls_when_quiet(self):
        sim, rp = self.make_rp()
        rp.on_cnp()
        alpha_after_cnp = rp.alpha
        sim.run(until=sim.now + 2 * MS)  # many quiet alpha-timer periods
        assert rp.alpha < alpha_after_cnp

    def test_repeated_cnps_respect_min_rate(self):
        sim, rp = self.make_rp(min_rate_bps=40 * 10**6)
        for _ in range(200):
            rp.on_cnp()
        assert rp.rate_bps >= 40 * 10**6

    def test_fast_recovery_converges_to_target(self):
        sim, rp = self.make_rp()
        rp.on_cnp()  # rc=20G, rt=40G
        sim.run(until=sim.now + 2 * MS)  # several 300us timer events
        # Fast recovery halves the gap each event: back near 40G.
        assert rp.rate_bps > gbps(38)

    def test_byte_counter_drives_increase(self):
        sim, rp = self.make_rp(byte_counter_bytes=1 * MB)
        rp.on_cnp()
        before = rp.rate_bps
        for _ in range(20):
            rp.on_bytes_sent(1 * MB)
        assert rp.rate_bps > before

    def test_hyper_increase_after_both_counters_pass(self):
        sim, rp = self.make_rp(byte_counter_bytes=64 * KB, fast_recovery_steps=2)
        rp.on_cnp()
        rp.on_cnp()
        floor = rp.rate_bps  # ~15 G after two cuts
        target = rp.rt  # 20 G
        # Push both event streams past F: hyper increase raises RT by
        # R_HAI per event, pulling RC past the old target.
        sim.run(until=sim.now + 3 * MS)
        for _ in range(10):
            rp.on_bytes_sent(64 * KB)
        assert rp.rate_bps > target > floor
        assert rp.rt > target + 10 * rp.config.rate_ai_bps  # hyper, not additive

    def test_second_cnp_cuts_deeper_via_higher_alpha(self):
        sim, rp = self.make_rp()
        rp.on_cnp()
        first_cut_ratio = rp.rc / rp.rt
        rate = rp.rc
        rp.on_cnp()
        second_cut_ratio = rp.rc / rate
        # alpha decayed between? no time passed; alpha rose after first
        # CNP, but the cut factor (1 - alpha/2) uses the pre-update
        # alpha... both cuts use alpha ~1 vs ~1: ratios comparable; what
        # must hold is monotone decrease.
        assert rp.rc < rate
        assert 0 < second_cut_ratio <= first_cut_ratio + 0.01

    def test_enable_dcqcn_requires_connected_host(self):
        topo = single_switch(n_hosts=2)
        rng = SeededRng(1, "d")
        # not booted is fine -- but the port must be linked (it is, via
        # the builder); verify RP picks up the 40G line rate.
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        rp = enable_dcqcn(qp)
        assert rp.line_rate_bps == gbps(40)
        assert qp.rp is rp


class TestClosedLoop:
    def test_incast_with_dcqcn_reduces_pause_generation(self):
        """The deployment rationale (section 2): DCQCN keeps queues small
        so fewer PFC pauses fire."""

        def run(with_dcqcn):
            from repro.switch.buffer import BufferConfig

            topo = single_switch(
                n_hosts=5,
                seed=7,
                ecn_config=EcnConfig(kmin_bytes=20 * KB, kmax_bytes=80 * KB, pmax=0.2),
                buffer_config=BufferConfig(alpha=None, xoff_static_bytes=96 * KB),
            ).boot()
            rng = SeededRng(7, "closed")
            victim = topo.hosts[0]
            for src in topo.hosts[1:]:
                qp, _ = connect_qp_pair(src, victim, rng)
                if with_dcqcn:
                    enable_dcqcn(qp)
                from repro.workloads import ClosedLoopSender, RdmaChannel

                ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
            topo.sim.run(until=topo.sim.now + 10 * MS)
            return topo.tor.pause_frames_sent(), topo.tor.counters.ecn_marked

        pauses_without, _ = run(False)
        pauses_with, marked = run(True)
        assert marked > 0  # CP marked packets
        assert pauses_with < pauses_without

    def test_cnp_reaches_sender_and_cuts_rate(self):
        topo = single_switch(
            n_hosts=3,
            seed=3,
            ecn_config=EcnConfig(kmin_bytes=5 * KB, kmax_bytes=20 * KB, pmax=1.0),
        ).boot()
        rng = SeededRng(3, "cnp")
        victim = topo.hosts[0]
        rps = []
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            rps.append(enable_dcqcn(qp))
            post_send(qp, 4 * MB)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert any(rp.cnps_handled > 0 for rp in rps)
        assert any(rp.rate_bps < gbps(40) for rp in rps)
