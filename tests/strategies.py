"""Shared Hypothesis strategies and traffic drivers for the test suite.

One home for the generators that several suites were growing ad hoc:

* :func:`sim_programs` / :func:`apply_sim_program` -- random scheduler
  programs (schedule / at / chain / cancel / run / step) used by the
  timing-wheel equivalence suite and anything else that differentials
  the event engine.
* :func:`buffer_ops` -- admit/release op streams for shared-buffer
  conservation properties.
* :func:`maxmin_problems` -- (links, paths) instances for the max-min
  allocator.
* :func:`two_tier_dims` -- small leaf/ToR fabric dimensions that boot
  fast enough for property tests.
* :func:`fault_plans` -- random :class:`~repro.faults.FaultPlan`s
  (flap / drop / corrupt / reorder) over a fabric's links.
* :func:`drive_incast` -- the canonical closed-loop incast driver
  (hosts[1..n] saturating hosts[0]) shared by the faults and property
  suites.
* :func:`validation_scenarios` -- the differential-validation scenario
  generator re-exported as a strategy (seed-mapped, so any failing
  example replays as ``python -m repro.validation sweep --seeds 1
  --start <seed>``).

Strategies take bounds as arguments so suites can tighten or widen them
without forking the generator.
"""

from hypothesis import strategies as st

from repro.rdma import QpConfig, connect_qp_pair
from repro.sim.units import KB
from repro.workloads import ClosedLoopSender, RdmaChannel

# --- event-engine programs ---------------------------------------------------

# One wheel window in nanoseconds; delays beyond this take the overflow
# heap and must migrate back into the wheel as the window advances.
from repro.sim.engine import _WHEEL_BITS, _WHEEL_SLOTS

WINDOW_NS = _WHEEL_SLOTS << _WHEEL_BITS


def sim_program_ops():
    """A single scheduler op: applied identically to the wheel engine
    and the heapq reference by :func:`apply_sim_program`."""
    return st.one_of(
        # schedule(delay): delays up to 3 windows exercise slot
        # wraparound, the overflow heap, and overflow->wheel migration.
        st.tuples(st.just("sched"), st.integers(0, 3 * WINDOW_NS)),
        # at(now + offset)
        st.tuples(st.just("at"), st.integers(0, 2 * WINDOW_NS)),
        # schedule a callback that, when fired, schedules another
        # recorded event `chain_delay` later -- chain_delay 0 lands in
        # the tick being drained (the side-heap merge path).
        st.tuples(
            st.just("chain"),
            st.integers(0, WINDOW_NS),
            st.integers(0, 4000),
        ),
        # cancel the (idx % len)-th previously returned handle
        st.tuples(st.just("cancel"), st.integers(0, 10**6)),
        st.tuples(st.just("run"), st.integers(0, WINDOW_NS)),
        st.tuples(st.just("step"), st.just(0)),
    )


def sim_programs(min_size=1, max_size=50):
    """A whole program: a list of :func:`sim_program_ops`."""
    return st.lists(sim_program_ops(), min_size=min_size, max_size=max_size)


def apply_sim_program(sim, ops):
    """Run `ops` against `sim`; return the fired-event trace."""
    trace = []
    handles = []
    tag = 0

    def make_chain(chain_delay, chain_tag):
        def fire():
            trace.append((sim.now, "chain", chain_tag))
            sim.schedule(chain_delay, trace.append, (sim.now, "link", chain_tag))

        return fire

    for op in ops:
        kind = op[0]
        if kind == "sched":
            handles.append(sim.schedule(op[1], trace.append, (sim.now, "s", tag)))
            tag += 1
        elif kind == "at":
            handles.append(sim.at(sim.now + op[1], trace.append, (sim.now, "a", tag)))
            tag += 1
        elif kind == "chain":
            handles.append(sim.schedule(op[1], make_chain(op[2], tag)))
            tag += 1
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "run":
            sim.run(until=sim.now + op[1])
            trace.append(("ran", sim.now, sim.events_fired))
        elif kind == "step":
            sim.step()
            trace.append(("stepped", sim.now, sim.events_fired))
    sim.run_until_idle()
    return trace


# --- shared-buffer op streams ------------------------------------------------


def buffer_ops(
    n_ports=4,
    priorities=(0, 3),
    min_bytes=64,
    max_bytes=9000,
    min_size=1,
    max_size=200,
):
    """(port, priority, nbytes) admit streams for conservation checks.

    The default priority menu mixes lossy (0) and lossless (3) traffic
    classes, matching the deployment's two-class split.
    """
    return st.lists(
        st.tuples(
            st.integers(0, n_ports - 1),
            st.sampled_from(list(priorities)),
            st.integers(min_bytes, max_bytes),
        ),
        min_size=min_size,
        max_size=max_size,
    )


# --- max-min allocation problems ---------------------------------------------


@st.composite
def maxmin_problems(draw, max_links=6, max_flows=20, max_capacity=100):
    """(links, paths): positive integer capacities, every path a
    non-empty duplicate-free link list."""
    n_links = draw(st.integers(1, max_links))
    links = {i: draw(st.integers(1, max_capacity)) for i in range(n_links)}
    n_flows = draw(st.integers(1, max_flows))
    paths = [
        draw(
            st.lists(
                st.integers(0, n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        for _ in range(n_flows)
    ]
    return links, paths


# --- topologies and fault plans ----------------------------------------------


def two_tier_dims(max_tors=2, max_hosts_per_tor=3, max_leaves=2):
    """Leaf/ToR dimensions small enough to boot inside a property test."""
    return st.fixed_dictionaries(
        {
            "n_tors": st.integers(1, max_tors),
            "hosts_per_tor": st.integers(1, max_hosts_per_tor),
            "n_leaves": st.integers(1, max_leaves),
        }
    )


@st.composite
def fault_plans(draw, n_links, seed, max_faults=4):
    """A random declarative FaultPlan over link indices [0, n_links).

    Mixes flaps, probabilistic drops/corruption and reordering with the
    same parameter envelopes the faults lane uses; conservation
    invariants must hold under any plan this draws (liveness invariants
    are allowed to trip -- that is what some of these plans provoke).
    """
    from repro.faults import FaultPlan

    plan = FaultPlan("random", seed=seed)
    for i in range(draw(st.integers(1, max_faults))):
        link = draw(st.integers(0, n_links - 1))
        kind = draw(st.sampled_from(["flap", "drop", "corrupt", "reorder"]))
        if kind == "flap":
            plan.flap_link(
                link,
                at_ns=draw(st.integers(150_000, 2_000_000)),
                down_ns=draw(st.integers(10_000, 400_000)),
            )
        elif kind == "drop":
            plan.drop(
                link,
                probability=draw(st.floats(0.001, 0.05)),
                match="data",
            )
        elif kind == "corrupt":
            plan.corrupt(
                link,
                probability=draw(st.floats(0.001, 0.05)),
                match="data",
            )
        else:
            plan.reorder(
                link,
                delay_ns=draw(st.integers(500, 20_000)),
                probability=draw(st.floats(0.01, 0.2)),
            )
    return plan


# --- traffic drivers ---------------------------------------------------------


def drive_incast(topo, n_senders, rng, message_bytes=256 * KB, config=None):
    """Closed-loop senders from hosts[1..n_senders] into hosts[0].

    The canonical congestion driver: enough to exercise PFC and shared
    buffers on any booted topology.  Caps ``n_senders`` at the available
    host count; a one-host fabric gets no traffic.
    """
    hosts = topo.fabric.hosts
    victim = hosts[0]
    for src in hosts[1 : 1 + n_senders]:
        config_a = config or QpConfig()
        config_b = config or QpConfig()
        qp, _ = connect_qp_pair(src, victim, rng, config_a=config_a, config_b=config_b)
        ClosedLoopSender(RdmaChannel(qp), message_bytes).start()


# --- validation scenarios ----------------------------------------------------


def validation_scenarios(max_seed=10**6):
    """Randomized-fabric validation scenarios (seed-mapped: shrinking
    shrinks the seed, and any example replays verbatim in the
    ``python -m repro.validation`` CLI)."""
    from repro.validation import scenario_strategy

    return scenario_strategy(max_seed=max_seed)
