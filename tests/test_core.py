"""Tests for the core contributions: deadlock analysis, PFC designs,
provisioning, safety profiles."""

import networkx as nx
import pytest

from repro.core import (
    DscpPfcDesign,
    ProvisioningService,
    PxeBootResult,
    VlanPfcDesign,
    detect_deadlock,
    naive_profile,
    paper_safe_profile,
    static_channel_dependencies,
)
from repro.core.deadlock import is_statically_deadlock_free
from repro.packets.packet import PriorityMode
from repro.rdma.recovery import GoBack0, GoBackN
from repro.sim.units import KB, MB
from repro.topo import deadlock_quad, single_switch, two_tier


class TestStaticAnalysis:
    def test_up_down_clos_is_deadlock_free(self):
        topo = two_tier(n_tors=2, hosts_per_tor=2, n_leaves=2).boot()
        assert is_statically_deadlock_free(topo.fabric.switches)

    def test_quad_with_routes_only_is_deadlock_free(self):
        topo = deadlock_quad().boot()
        switches = [topo.t0, topo.t1, topo.la, topo.lb]
        assert is_statically_deadlock_free(switches)

    def test_lossless_flooding_closes_the_cycle(self):
        # The paper's root cause, in graph form: admitting flooding to
        # lossless classes adds the dependencies that create a cycle.
        topo = deadlock_quad().boot()
        switches = [topo.t0, topo.t1, topo.la, topo.lb]
        assert not is_statically_deadlock_free(switches, assume_lossless_flooding=True)

    def test_dependency_graph_has_channel_nodes(self):
        topo = two_tier(n_tors=2, hosts_per_tor=1, n_leaves=1).boot()
        graph = static_channel_dependencies(topo.fabric.switches)
        assert all(len(node) == 3 for node in graph.nodes)


class TestRuntimeDetector:
    def test_clean_fabric_reports_clear(self):
        topo = single_switch(n_hosts=2).boot()
        report = detect_deadlock([topo.tor])
        assert not report.deadlocked
        assert report.involved_switches() == []

    def test_report_repr(self):
        topo = single_switch(n_hosts=2).boot()
        assert "clear" in repr(detect_deadlock([topo.tor]))


class TestDesigns:
    def test_vlan_design_validation_fails_in_paper_environment(self):
        problems = VlanPfcDesign().validate(layer3_fabric=True, pxe_boot_needed=True)
        assert len(problems) == 2

    def test_dscp_design_validates_clean(self):
        assert DscpPfcDesign().validate() == []

    def test_dscp_design_honest_about_layer2(self):
        problems = DscpPfcDesign().validate(layer2_only_protocols=True)
        assert len(problems) == 1  # FCoE-style designs can't use it

    def test_port_modes(self):
        assert VlanPfcDesign().required_server_port_mode == "trunk"
        assert DscpPfcDesign().required_server_port_mode == "access"

    def test_traffic_classes(self):
        vlan_tc = VlanPfcDesign(vlan_id=7).traffic_class(priority=3)
        assert vlan_tc.vlan_id == 7
        assert vlan_tc.vlan_tag().pcp == 3
        dscp_tc = DscpPfcDesign().traffic_class(priority=3)
        assert dscp_tc.vlan_id is None
        assert dscp_tc.dscp == 3

    def test_dscp_reverse_mapping(self):
        design = DscpPfcDesign(dscp_to_priority={46: 3})
        assert design.traffic_class(priority=3).dscp == 46
        with pytest.raises(ValueError):
            design.traffic_class(priority=5)

    def test_pfc_config_modes(self):
        assert VlanPfcDesign().pfc_config().priority_mode == PriorityMode.VLAN
        assert DscpPfcDesign().pfc_config().priority_mode == PriorityMode.DSCP

    def test_apply_to_switch(self):
        topo = single_switch(n_hosts=2).boot()
        VlanPfcDesign().apply_to_switch(topo.tor)
        assert topo.tor.pfc_config.priority_mode == PriorityMode.VLAN
        assert topo.tor.ports[0].vlan_port_mode == "trunk"


class TestProvisioning:
    def test_pxe_succeeds_on_access_ports(self):
        topo = single_switch(n_hosts=2).boot()
        topo.tor.set_server_port_modes("access")
        service = ProvisioningService(topo.sim, topo.hosts[1])
        assert service.attempt_boot(topo.hosts[0]) == PxeBootResult.SUCCESS

    def test_pxe_breaks_on_trunk_ports(self):
        topo = single_switch(n_hosts=2).boot()
        topo.tor.set_server_port_modes("trunk")
        service = ProvisioningService(topo.sim, topo.hosts[1])
        assert service.attempt_boot(topo.hosts[0]) == PxeBootResult.BROKEN_TRUNK_PORT
        assert topo.tor.counters.drops["vlan-port-mode"] > 0

    def test_pxe_succeeds_with_no_enforcement(self):
        topo = single_switch(n_hosts=2).boot()
        service = ProvisioningService(topo.sim, topo.hosts[1])
        assert service.attempt_boot(topo.hosts[0]) == PxeBootResult.SUCCESS


class TestSafetyProfiles:
    def test_paper_profile_contents(self):
        profile = paper_safe_profile()
        assert isinstance(profile.recovery(), GoBackN)
        assert profile.drop_lossless_on_incomplete_arp
        assert profile.nic_watchdog_enabled and profile.switch_watchdog_enabled
        assert profile.buffer_alpha == 1.0 / 16
        assert profile.mtt_page_bytes == 2 * MB

    def test_naive_profile_contents(self):
        profile = naive_profile()
        assert isinstance(profile.recovery(), GoBack0)
        assert not profile.drop_lossless_on_incomplete_arp
        assert profile.buffer_alpha == 1.0 / 64
        assert profile.mtt_page_bytes == 4 * KB

    def test_apply_to_topology(self):
        topo = single_switch(n_hosts=2).boot()
        paper_safe_profile().apply_to_topology(topo)
        assert topo.tor.tables.drop_lossless_on_incomplete_arp
        assert topo.tor._watchdogs  # armed on server ports
        assert all(h.nic.config.watchdog_config.enabled for h in topo.hosts)

    def test_profile_config_factories(self):
        profile = paper_safe_profile()
        assert profile.buffer_config().alpha == 1.0 / 16
        assert profile.mtt_config().page_bytes == 2 * MB
        assert profile.forwarding_kwargs()["drop_lossless_on_incomplete_arp"]
