"""Tests for monitoring: counters, config drift, pingmesh, incidents."""

import pytest

from repro.monitoring import (
    ConfigMonitor,
    CounterCollector,
    DesiredConfig,
    IncidentDetector,
    Pingmesh,
    read_probe_jsonl,
    summarize_probe_records,
)
from repro.monitoring.pingmesh import ProbeResult
from repro.packets.packet import PriorityMode
from repro.rdma import connect_qp_pair, post_send
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.buffer import BufferConfig
from repro.switch.pfc import PfcConfig
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel


def desired():
    return DesiredConfig(
        priority_mode=PriorityMode.DSCP,
        lossless_priorities=frozenset((3, 4)),
        buffer_alpha=1.0 / 16,
    )


class TestConfigMonitor:
    def test_compliant_fabric_reports_nothing(self):
        topo = single_switch(n_hosts=2).boot()
        assert ConfigMonitor(desired()).check_fabric(topo.fabric) == []

    def test_alpha_drift_detected(self):
        # The section 6.2 incident class: one switch running 1/64.
        topo = single_switch(n_hosts=2, buffer_config=BufferConfig(alpha=1.0 / 64)).boot()
        drifts = ConfigMonitor(desired()).check_fabric(topo.fabric)
        assert any(d.field == "buffer_alpha" and d.running == 1.0 / 64 for d in drifts)

    def test_priority_mode_drift_detected(self):
        topo = single_switch(
            n_hosts=2, pfc_config=PfcConfig(priority_mode=PriorityMode.VLAN)
        ).boot()
        drifts = ConfigMonitor(desired()).check_fabric(topo.fabric)
        fields = {d.field for d in drifts}
        assert "priority_mode" in fields

    def test_lossless_priority_drift_on_host(self):
        topo = single_switch(n_hosts=1, pfc_config=PfcConfig(lossless_priorities=(3,))).boot()
        drifts = ConfigMonitor(desired()).check_fabric(topo.fabric)
        assert any(d.device.startswith("S0") for d in drifts)

    def test_drift_from_design(self):
        from repro.core import DscpPfcDesign

        config = DesiredConfig.from_design(DscpPfcDesign(lossless_priorities=(3, 4)))
        topo = single_switch(n_hosts=1).boot()
        assert ConfigMonitor(config).check_fabric(topo.fabric) == []


class TestCounterCollector:
    def test_collects_series(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        rng = SeededRng(1, "cc")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        post_send(qp, 1 * MB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        collector.stop()
        series = collector.series("T0", "rx_bytes")
        assert len(series) >= 4
        assert series[-1][1] > 0

    def test_rate_series_deltas(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        topo.sim.run(until=topo.sim.now + 3 * MS)
        deltas = collector.rate_series("T0", "rx_bytes")
        assert all(d >= 0 for _, d in deltas)

    def test_devices_cover_switches_and_hosts(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        topo.sim.run(until=topo.sim.now + 1 * MS)
        devices = collector.devices()
        assert "T0" in devices
        assert "S0" in devices


class TestPingmesh:
    def test_probes_record_rtt(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(2, "pm")
        pingmesh = Pingmesh(topo.sim, rng, interval_ns=1 * MS)
        pingmesh.add_pair(topo.hosts[0], topo.hosts[1])
        pingmesh.start()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        pingmesh.stop()
        assert len(pingmesh.rtts_ns()) >= 5
        assert pingmesh.error_rate() == 0.0
        assert pingmesh.rtt_percentile_us(50) > 0

    def test_full_mesh_pairs(self):
        topo = single_switch(n_hosts=3).boot()
        rng = SeededRng(2, "pm")
        pingmesh = Pingmesh(topo.sim, rng, interval_ns=1 * MS)
        pingmesh.add_full_mesh(topo.hosts)
        assert len(pingmesh._pairs) == 6  # 3x2 directed pairs

    def test_dead_destination_logs_timeouts(self):
        # The paper: "logs the measured RTT (if probes succeed) or error
        # code (if probes fail)" -- this is how dead paths are inferred.
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(2, "pm")
        pingmesh = Pingmesh(topo.sim, rng, interval_ns=1 * MS)
        pingmesh.add_pair(topo.hosts[0], topo.hosts[1])
        topo.hosts[1].die()
        pingmesh.start()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        assert pingmesh.error_rate() > 0.5


class TestPingmeshSummary:
    """The operator view: percentiles, error breakdown, JSONL export."""

    def _results(self):
        results = [
            ProbeResult(t_ns=i * 1000, src="H0", dst="H1", rtt_ns=(i + 1) * 1000)
            for i in range(9)
        ]
        results.append(ProbeResult(t_ns=99, src="H0", dst="H2", error="timeout"))
        results.append(ProbeResult(t_ns=100, src="H0", dst="H2", error="timeout"))
        results.append(ProbeResult(t_ns=101, src="H0", dst="H3", error="rnr_nak"))
        return results

    def _pingmesh(self):
        pingmesh = Pingmesh.__new__(Pingmesh)
        pingmesh.results = self._results()
        return pingmesh

    def test_summary_shape_and_percentiles(self):
        summary = self._pingmesh().summary()
        assert summary["probes"] == 12
        assert summary["ok"] == 9
        assert summary["error_rate"] == pytest.approx(3 / 12)
        rtt = summary["rtt_us"]
        # 1..9 us samples: p50 interpolates to 5 us exactly.
        assert rtt["count"] == 9
        assert rtt["p50"] == pytest.approx(5.0)
        assert rtt["p90"] <= rtt["p99"] <= rtt["p999"] <= 9.0

    def test_error_breakdown(self):
        breakdown = self._pingmesh().error_breakdown()
        assert breakdown == {"timeout": 2, "rnr_nak": 1}

    def test_jsonl_round_trip(self, tmp_path):
        pingmesh = self._pingmesh()
        path = pingmesh.to_jsonl(str(tmp_path / "probes.jsonl"))
        records = read_probe_jsonl(path)
        assert len(records) == len(pingmesh.results)
        assert records[0] == pingmesh.results[0].as_record()
        # Offline summary of the export matches the online view.
        assert summarize_probe_records(records) == pingmesh.summary()

    def test_empty_summary(self):
        summary = summarize_probe_records([])
        assert summary["probes"] == 0
        assert summary["error_rate"] == 0.0
        assert summary["rtt_us"]["p50"] is None

    def test_all_failed_summary(self):
        summary = summarize_probe_records(
            [{"t_ns": 0, "src": "a", "dst": "b", "rtt_ns": None,
              "error": "timeout"}]
        )
        assert summary["error_rate"] == 1.0
        assert summary["rtt_us"]["count"] == 0

    def test_live_run_summary(self):
        topo = single_switch(n_hosts=2).boot()
        pingmesh = Pingmesh(topo.sim, SeededRng(2, "pm"), interval_ns=1 * MS)
        pingmesh.add_pair(topo.hosts[0], topo.hosts[1])
        pingmesh.start()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        pingmesh.stop()
        summary = pingmesh.summary()
        assert summary["ok"] == len(pingmesh.rtts_ns())
        assert summary["rtt_us"]["p50"] == pytest.approx(
            pingmesh.rtt_percentile_us(50)
        )


class _StubSnapshot:
    def __init__(self, device, t_ns, values):
        self.device = device
        self.t_ns = t_ns
        self.values = values


class _StubCollector:
    """Minimal CounterCollector stand-in: canned rate series."""

    def __init__(self, rates, server_devices=()):
        # rates: {device: [(t_ns, delta), ...]} applied to both metrics
        self._rates = rates
        self.snapshots = [
            _StubSnapshot(
                device,
                series[-1][0],
                {"rx_processed": 0} if device in server_devices else {},
            )
            for device, series in rates.items()
        ]

    def devices(self):
        return sorted(self._rates)

    def rate_series(self, device, metric):
        return self._rates[device]


class TestIncidentDetectorWindows:
    def test_window_boundaries_and_peak(self):
        collector = _StubCollector(
            {"T0": [(1, 0), (2, 9), (3, 12), (4, 0), (5, 0)]}
        )
        detector = IncidentDetector(collector, pause_rate_threshold=5)
        storms = detector.pause_storms()
        assert len(storms) == 1
        storm = storms[0]
        assert (storm.start_ns, storm.end_ns) == (2, 4)
        assert storm.peak_rate == 12
        assert storm.metric == "pause_rx"

    def test_still_open_storm_closes_at_last_snapshot(self):
        collector = _StubCollector({"T0": [(1, 0), (2, 9), (3, 9)]})
        detector = IncidentDetector(collector, pause_rate_threshold=5)
        (storm,) = detector.pause_storms()
        assert storm.end_ns == 3

    def test_trace_origin_prefers_servers_over_switches(self):
        # The paper's diagnosis: switches relay and amplify pauses, so a
        # storming *server* is the origin even when a switch peaks higher.
        collector = _StubCollector(
            {
                "T0": [(1, 50), (2, 50)],
                "H0": [(1, 10), (2, 10)],
            },
            server_devices={"H0"},
        )
        detector = IncidentDetector(collector, pause_rate_threshold=5)
        assert detector.trace_origin() == "H0"

    def test_trace_origin_falls_back_to_peak_switch(self):
        collector = _StubCollector(
            {"T0": [(1, 50)], "T1": [(1, 80)], "H0": [(1, 0)]},
            server_devices={"H0"},
        )
        detector = IncidentDetector(collector, pause_rate_threshold=5)
        assert detector.trace_origin() == "T1"


class TestIncidentDetector:
    def test_traces_storm_to_origin(self):
        topo = single_switch(n_hosts=3, buffer_config=BufferConfig(
            alpha=None, xoff_static_bytes=48 * KB)).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        victim = topo.hosts[0]
        victim.nic.break_rx_pipeline()
        rng = SeededRng(5, "storm")
        qp, _ = connect_qp_pair(topo.hosts[1], victim, rng)
        ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()
        topo.sim.run(until=topo.sim.now + 20 * MS)
        collector.stop()
        detector = IncidentDetector(collector, pause_rate_threshold=3)
        assert detector.trace_origin() == victim.name
        assert detector.pause_sources()

    def test_quiet_fabric_has_no_incidents(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        topo.sim.run(until=topo.sim.now + 5 * MS)
        detector = IncidentDetector(collector, pause_rate_threshold=3)
        assert detector.pause_storms() == []
        assert detector.trace_origin() is None
