"""Tests for monitoring: counters, config drift, pingmesh, incidents."""

import pytest

from repro.monitoring import (
    ConfigMonitor,
    CounterCollector,
    DesiredConfig,
    IncidentDetector,
    Pingmesh,
)
from repro.packets.packet import PriorityMode
from repro.rdma import connect_qp_pair, post_send
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.buffer import BufferConfig
from repro.switch.pfc import PfcConfig
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel


def desired():
    return DesiredConfig(
        priority_mode=PriorityMode.DSCP,
        lossless_priorities=frozenset((3, 4)),
        buffer_alpha=1.0 / 16,
    )


class TestConfigMonitor:
    def test_compliant_fabric_reports_nothing(self):
        topo = single_switch(n_hosts=2).boot()
        assert ConfigMonitor(desired()).check_fabric(topo.fabric) == []

    def test_alpha_drift_detected(self):
        # The section 6.2 incident class: one switch running 1/64.
        topo = single_switch(n_hosts=2, buffer_config=BufferConfig(alpha=1.0 / 64)).boot()
        drifts = ConfigMonitor(desired()).check_fabric(topo.fabric)
        assert any(d.field == "buffer_alpha" and d.running == 1.0 / 64 for d in drifts)

    def test_priority_mode_drift_detected(self):
        topo = single_switch(
            n_hosts=2, pfc_config=PfcConfig(priority_mode=PriorityMode.VLAN)
        ).boot()
        drifts = ConfigMonitor(desired()).check_fabric(topo.fabric)
        fields = {d.field for d in drifts}
        assert "priority_mode" in fields

    def test_lossless_priority_drift_on_host(self):
        topo = single_switch(n_hosts=1, pfc_config=PfcConfig(lossless_priorities=(3,))).boot()
        drifts = ConfigMonitor(desired()).check_fabric(topo.fabric)
        assert any(d.device.startswith("S0") for d in drifts)

    def test_drift_from_design(self):
        from repro.core import DscpPfcDesign

        config = DesiredConfig.from_design(DscpPfcDesign(lossless_priorities=(3, 4)))
        topo = single_switch(n_hosts=1).boot()
        assert ConfigMonitor(config).check_fabric(topo.fabric) == []


class TestCounterCollector:
    def test_collects_series(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        rng = SeededRng(1, "cc")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        post_send(qp, 1 * MB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        collector.stop()
        series = collector.series("T0", "rx_bytes")
        assert len(series) >= 4
        assert series[-1][1] > 0

    def test_rate_series_deltas(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        topo.sim.run(until=topo.sim.now + 3 * MS)
        deltas = collector.rate_series("T0", "rx_bytes")
        assert all(d >= 0 for _, d in deltas)

    def test_devices_cover_switches_and_hosts(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        topo.sim.run(until=topo.sim.now + 1 * MS)
        devices = collector.devices()
        assert "T0" in devices
        assert "S0" in devices


class TestPingmesh:
    def test_probes_record_rtt(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(2, "pm")
        pingmesh = Pingmesh(topo.sim, rng, interval_ns=1 * MS)
        pingmesh.add_pair(topo.hosts[0], topo.hosts[1])
        pingmesh.start()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        pingmesh.stop()
        assert len(pingmesh.rtts_ns()) >= 5
        assert pingmesh.error_rate() == 0.0
        assert pingmesh.rtt_percentile_us(50) > 0

    def test_full_mesh_pairs(self):
        topo = single_switch(n_hosts=3).boot()
        rng = SeededRng(2, "pm")
        pingmesh = Pingmesh(topo.sim, rng, interval_ns=1 * MS)
        pingmesh.add_full_mesh(topo.hosts)
        assert len(pingmesh._pairs) == 6  # 3x2 directed pairs

    def test_dead_destination_logs_timeouts(self):
        # The paper: "logs the measured RTT (if probes succeed) or error
        # code (if probes fail)" -- this is how dead paths are inferred.
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(2, "pm")
        pingmesh = Pingmesh(topo.sim, rng, interval_ns=1 * MS)
        pingmesh.add_pair(topo.hosts[0], topo.hosts[1])
        topo.hosts[1].die()
        pingmesh.start()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        assert pingmesh.error_rate() > 0.5


class TestIncidentDetector:
    def test_traces_storm_to_origin(self):
        topo = single_switch(n_hosts=3, buffer_config=BufferConfig(
            alpha=None, xoff_static_bytes=48 * KB)).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        victim = topo.hosts[0]
        victim.nic.break_rx_pipeline()
        rng = SeededRng(5, "storm")
        qp, _ = connect_qp_pair(topo.hosts[1], victim, rng)
        ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()
        topo.sim.run(until=topo.sim.now + 20 * MS)
        collector.stop()
        detector = IncidentDetector(collector, pause_rate_threshold=3)
        assert detector.trace_origin() == victim.name
        assert detector.pause_sources()

    def test_quiet_fabric_has_no_incidents(self):
        topo = single_switch(n_hosts=2).boot()
        collector = CounterCollector(topo.sim, topo.fabric, interval_ns=1 * MS).start()
        topo.sim.run(until=topo.sim.now + 5 * MS)
        detector = IncidentDetector(collector, pause_rate_threshold=3)
        assert detector.pause_storms() == []
        assert detector.trace_origin() is None
