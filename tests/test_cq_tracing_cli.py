"""Tests for the completion queue, the packet tracer and the CLI."""

import json
import os

import pytest

from repro.rdma import CompletionQueue, WorkCompletion, connect_qp_pair, post_read, post_send
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS
from repro.topo import single_switch
from repro.tracing import PacketTracer, summarize


class TestCompletionQueue:
    def test_poll_returns_completions_in_order(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(1, "cq")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        cq = CompletionQueue()
        first = post_send(qp, 16 * KB, cq=cq)
        second = post_send(qp, 16 * KB, cq=cq)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        completions = cq.poll(16)
        assert [wc.wr_id for wc in completions] == [first.wr_id, second.wr_id]
        assert all(wc.ok for wc in completions)
        assert all(wc.kind == "send" for wc in completions)
        assert len(cq) == 0

    def test_poll_respects_max_entries(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(2, "cq")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        cq = CompletionQueue()
        for _ in range(5):
            post_send(qp, 4 * KB, cq=cq)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert len(cq.poll(2)) == 2
        assert len(cq) == 3

    def test_overflow_counted(self):
        cq = CompletionQueue(capacity=1)
        assert cq.push(WorkCompletion(1, "send", 10, 0))
        assert not cq.push(WorkCompletion(2, "send", 10, 0))
        assert cq.overflows == 1

    def test_cq_and_callback_compose(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(3, "cq")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        cq = CompletionQueue()
        called = []
        post_read(qp, 8 * KB, on_complete=lambda wr, t: called.append(wr.wr_id), cq=cq)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert called
        assert cq.poll(1)[0].kind == "read"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CompletionQueue(capacity=0)


class TestPacketTracer:
    def _traced_run(self):
        topo = single_switch(n_hosts=2).boot()
        tracer = PacketTracer(topo.sim).attach_all(topo.fabric)
        rng = SeededRng(4, "trace")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        post_send(qp, 32 * KB)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        return topo, tracer

    def test_captures_data_and_acks(self):
        topo, tracer = self._traced_run()
        rocev2 = tracer.select(kind="rocev2")
        assert len(rocev2) > 32
        opcodes = {r.fields["opcode"] for r in rocev2}
        assert "SEND_FIRST" in opcodes and "ACKNOWLEDGE" in opcodes

    def test_psns_are_sequential_on_clean_run(self):
        # Per hop, a clean run emits strictly increasing PSNs (frames
        # from different hops interleave in global capture order).
        topo, tracer = self._traced_run()
        by_hop = {}
        for record in tracer.select(kind="rocev2"):
            if record.fields["opcode"].startswith("SEND"):
                by_hop.setdefault(record.src_port, []).append(record.fields["psn"])
        assert by_hop
        for psns in by_hop.values():
            assert psns == sorted(psns)

    def test_select_filters(self):
        topo, tracer = self._traced_run()
        assert tracer.select(kind="pause") == []
        assert len(tracer.select(link="S0")) > 0
        late = tracer.select(since_ns=topo.sim.now)
        assert late == []

    def test_counts_by_kind(self):
        topo, tracer = self._traced_run()
        counts = tracer.counts_by_kind()
        assert counts.get("rocev2", 0) > 0

    def test_jsonl_round_trip(self, tmp_path):
        topo, tracer = self._traced_run()
        path = tracer.to_jsonl(str(tmp_path / "trace.jsonl"))
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == len(tracer)
        assert all("t_ns" in line and "kind" in line for line in lines)

    def test_max_records_cap(self):
        topo = single_switch(n_hosts=2).boot()
        tracer = PacketTracer(topo.sim, max_records=10).attach_all(topo.fabric)
        rng = SeededRng(5, "cap")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        post_send(qp, 256 * KB)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert len(tracer) == 10
        assert tracer.dropped_records > 0

    def test_tracing_does_not_change_outcome(self):
        def run(traced):
            topo = single_switch(n_hosts=2, seed=6).boot()
            if traced:
                PacketTracer(topo.sim).attach_all(topo.fabric)
            rng = SeededRng(6, "iso")
            qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
            wr = post_send(qp, 64 * KB)
            topo.sim.run(until=topo.sim.now + 2 * MS)
            return wr.completed_ns

        assert run(False) == run(True)

    def test_pause_frames_decoded(self):
        from repro.switch.buffer import BufferConfig
        from repro.workloads import ClosedLoopSender, RdmaChannel

        topo = single_switch(
            n_hosts=4, buffer_config=BufferConfig(alpha=None, xoff_static_bytes=32 * KB)
        ).boot()
        tracer = PacketTracer(topo.sim).attach_all(topo.fabric)
        rng = SeededRng(7, "pause")
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, topo.hosts[0], rng)
            ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
        topo.sim.run(until=topo.sim.now + 3 * MS)
        pauses = tracer.select(kind="pause")
        assert pauses
        assert any(r.fields["paused"] for r in pauses)


class TestSummarize:
    def test_tcp_summary(self):
        from repro.packets import Ipv4Header, Packet, TcpHeader

        packet = Packet.tcp_segment(
            dst_mac=1,
            src_mac=2,
            ip=Ipv4Header(src=1, dst=2, protocol=6),
            tcp=TcpHeader(src_port=9, dst_port=10, seq=5),
            payload_bytes=100,
        )
        kind, fields = summarize(packet)
        assert kind == "tcp"
        assert fields["seq"] == 5
        assert fields["payload"] == 100


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "run_livelock" in out

    def test_run_by_id_with_csv(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["E10", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "e10.csv").exists()
        out = capsys.readouterr().out
        assert "CPU overhead" in out

    def test_run_by_fragment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["headroom"]) == 0
        assert "lossless_classes" in capsys.readouterr().out

    def test_unknown_token(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["zzz-no-such"]) == 2
