"""Tests for the DCTCP extension on the TCP baseline."""

import pytest

from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS
from repro.switch.buffer import BufferConfig
from repro.switch.ecn import EcnConfig
from repro.tcp import TcpConfig, connect_tcp_pair
from repro.topo import single_switch


def ecn_fabric(seed=31, kmin=10, kmax=40):
    return single_switch(
        n_hosts=5,
        seed=seed,
        buffer_config=BufferConfig(
            alpha=None, xoff_static_bytes=96 * KB, lossy_egress_cap_bytes=128 * KB
        ),
        ecn_config=EcnConfig(kmin_bytes=kmin * KB, kmax_bytes=kmax * KB, pmax=0.5),
    ).boot()


def dctcp_config(**kwargs):
    kwargs.setdefault("ecn_enabled", True)
    return TcpConfig(**kwargs)


class TestDctcpMechanics:
    def test_segments_are_ect_when_enabled(self):
        from repro.packets.ip import ECN_ECT0, ECN_NOT_ECT

        topo = ecn_fabric()
        rng = SeededRng(31, "dctcp")
        conn_dctcp, _ = connect_tcp_pair(
            topo.hosts[0], topo.hosts[1], rng,
            config_a=dctcp_config(), config_b=dctcp_config(),
        )
        conn_reno, _ = connect_tcp_pair(
            topo.hosts[2], topo.hosts[3], rng,
            config_a=TcpConfig(), config_b=TcpConfig(),
        )
        assert conn_dctcp._build_segment(0, 1000).ip.ecn == ECN_ECT0
        assert conn_reno._build_segment(0, 1000).ip.ecn == ECN_NOT_ECT
        # Pure ACKs are never ECT (standard DCTCP practice).
        assert conn_dctcp._build_segment(0, 0).ip.ecn == ECN_NOT_ECT

    def test_ce_marks_echoed_and_alpha_rises(self):
        topo = ecn_fabric()
        rng = SeededRng(32, "dctcp")
        victim = topo.hosts[0]
        connections = []
        for src in topo.hosts[1:]:
            conn, _ = connect_tcp_pair(
                src, victim, rng, config_a=dctcp_config(), config_b=dctcp_config()
            )
            conn.send_message(2 * MB)
            connections.append(conn)
        topo.sim.run(until=topo.sim.now + 50 * MS)
        assert any(c.stats.ce_acks > 0 for c in connections)
        assert any(c.dctcp_alpha > 0 for c in connections)
        assert any(c.stats.dctcp_cuts > 0 for c in connections)

    def test_reno_ignores_marks(self):
        topo = ecn_fabric()
        rng = SeededRng(33, "reno")
        conn, _ = connect_tcp_pair(
            topo.hosts[0], topo.hosts[1], rng,
            config_a=TcpConfig(), config_b=TcpConfig(),
        )
        conn.send_message(2 * MB)
        topo.sim.run(until=topo.sim.now + 50 * MS)
        assert conn.stats.ce_acks == 0
        assert conn.dctcp_alpha == 0.0

    def test_transfer_still_completes_with_dctcp(self):
        topo = ecn_fabric()
        rng = SeededRng(34, "done")
        done = []
        conn, _ = connect_tcp_pair(
            topo.hosts[0], topo.hosts[1], rng,
            config_a=dctcp_config(), config_b=dctcp_config(),
        )
        conn.send_message(4 * MB, on_delivered=done.append)
        topo.sim.run(until=topo.sim.now + 200 * MS)
        assert done


class TestDctcpVsReno:
    def test_dctcp_cuts_incast_drops(self):
        """DCTCP's raison d'etre: react to marks before the queue
        overflows, so incast drops (and the RTO tail) shrink."""

        def run(ecn):
            topo = ecn_fabric(seed=35)
            rng = SeededRng(35, "cmp")
            victim = topo.hosts[0]
            config = dctcp_config() if ecn else TcpConfig()
            for src in topo.hosts[1:]:
                conn, _ = connect_tcp_pair(
                    src, victim, rng,
                    config_a=dctcp_config() if ecn else TcpConfig(),
                    config_b=dctcp_config() if ecn else TcpConfig(),
                )
                for _ in range(4):
                    conn.send_message(512 * KB)
            topo.sim.run(until=topo.sim.now + 100 * MS)
            return (
                topo.tor.counters.drops["egress-lossy"]
                + topo.tor.counters.drops["buffer-lossy"]
            )

        drops_reno = run(False)
        drops_dctcp = run(True)
        assert drops_dctcp < drops_reno
