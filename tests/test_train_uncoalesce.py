"""Uncoalesce paths of the departure-train gate (net/port.py).

A committed train is a promise that nothing perturbs the departure
schedule until it ends.  These tests break the promise in every way the
port allows mid-train -- a PFC pause arriving on the train's priority, a
higher-priority enqueue, the storm watchdog tripping, an administrative
freeze -- and check both the immediate mechanics (train aborted, booked
frames stand, the wire frame's completion re-armed) and the end state:
model counters must match a run with coalescing disabled outright.
"""

import pytest

from repro.faults import install_default_auditors
from repro.faults.invariants import CONSERVATION_INVARIANTS
from repro.packets import Ipv4Header, Packet, PfcPauseFrame, TcpHeader
from repro.sim import SeededRng
from repro.sim.units import KB, MS
from repro.topo import single_switch
from tests.strategies import drive_incast

#: The lossless class RDMA traffic rides on (QpConfig default).
RDMA_PRIORITY = 3


def _boot(seed=3, n_hosts=3, coalesce=True):
    topo = single_switch(n_hosts=n_hosts, seed=seed).boot()
    topo.sim.coalesce_enabled = coalesce
    drive_incast(topo, n_hosts - 1, SeededRng(seed, "train"), message_bytes=128 * KB)
    return topo


def _port_to(topo, host):
    """The ToR egress port facing ``host``'s NIC (the only ports that
    may coalesce: links toward NICs keep ``coalesce_ok`` on)."""
    for port in topo.tor.ports:
        if port.peer is not None and port.peer.device is host.nic:
            return port
    raise AssertionError("no ToR port faces %s" % host.name)


def _run_until_train(topo, port, deadline_ns=4 * MS):
    """Single-step the simulation until ``port`` has a committed train."""
    sim = topo.sim
    while sim.now < deadline_ns:
        if port._train is not None:
            return True
        if not sim.step():
            break
    return False


def _tcp_packet(payload=256):
    ip = Ipv4Header(src=1, dst=2, protocol=6, dscp=0)
    tcp = TcpHeader(src_port=1000, dst_port=80)
    return Packet.tcp_segment(
        dst_mac=2, src_mac=1, ip=ip, tcp=tcp, payload_bytes=payload
    )


def _model_digest(topo):
    """Counters any coalescing bug would smear: per-port tx totals, PFC
    activity, and the logical event count (elisions credited)."""
    tor = topo.tor
    return (
        tuple(p.stats.total_tx_packets for p in tor.ports),
        tuple(p.stats.total_tx_bytes for p in tor.ports),
        tuple(p.stats.pause_rx for p in tor.ports),
        tor.pause_frames_sent(),
        tuple(h.nic.stats.pause_generated for h in topo.hosts),
        topo.sim.events_fired,
    )


def _queue_accounting_exact(port):
    assert port.total_queued_packets == sum(port.queue_lengths)
    assert port.total_queued_bytes == sum(port.queued_bytes)


def test_incast_commits_a_train_on_the_server_facing_port():
    topo = _boot()
    port = _port_to(topo, topo.hosts[0])
    assert _run_until_train(topo, port)
    train = port._train
    assert train.priority == RDMA_PRIORITY
    assert len(train.entries) >= 2
    # Frame 0 departs at commit time and is booked synchronously.
    assert train.settle_idx >= 1


def test_pause_arrival_on_train_priority_uncoalesces():
    topo = _boot()
    port = _port_to(topo, topo.hosts[0])
    assert _run_until_train(topo, port)
    settled_before = port._train.settle_idx
    tx_before = port.stats.tx_packets[RDMA_PRIORITY]
    port.receive_pause(PfcPauseFrame({RDMA_PRIORITY: 500}))
    assert port._train is None
    assert port.is_paused(RDMA_PRIORITY)
    # Booked frames stand; nothing was double-booked or clawed back.
    assert port.stats.tx_packets[RDMA_PRIORITY] >= max(tx_before, settled_before)
    _queue_accounting_exact(port)
    # The wire frame's completion was re-armed: after the pause expires
    # the port keeps transmitting without a fresh kick.
    topo.sim.run(until=topo.sim.now + 2 * MS)
    assert port.stats.tx_packets[RDMA_PRIORITY] > tx_before + 1


def test_pause_on_other_priority_leaves_train_committed():
    topo = _boot()
    port = _port_to(topo, topo.hosts[0])
    assert _run_until_train(topo, port)
    port.receive_pause(PfcPauseFrame({RDMA_PRIORITY + 1: 500}))
    assert port._train is not None


def test_pause_mid_train_matches_uncoalesced_run_exactly():
    # Find a train commit time on the coalescing run...
    probe = _boot()
    probe_port = _port_to(probe, probe.hosts[0])
    assert _run_until_train(probe, probe_port)
    pause_at = probe.sim.now + 1  # strictly after the commit dispatch

    # ...then inject the same pause at the same instant into two fresh
    # runs, coalescing on and off.  Every model counter must agree: an
    # uncoalesce that books a frame early/late or loses a delivery event
    # shows up here.
    def run(coalesce):
        topo = _boot(coalesce=coalesce)
        port = _port_to(topo, topo.hosts[0])
        topo.sim.at(
            pause_at, port.receive_pause, PfcPauseFrame({RDMA_PRIORITY: 500})
        )
        topo.sim.run(until=3 * MS)
        return _model_digest(topo)

    assert run(coalesce=True) == run(coalesce=False)


def test_higher_priority_enqueue_mid_train_uncoalesces_and_preempts():
    topo = _boot()
    port = _port_to(topo, topo.hosts[0])
    assert _run_until_train(topo, port)
    high = RDMA_PRIORITY + 2
    port.enqueue(_tcp_packet(), priority=high, meta=None)
    assert port._train is None
    _queue_accounting_exact(port)
    topo.sim.run(until=topo.sim.now + 1 * MS)
    # Strict priority served the interloper ahead of the old train tail.
    assert port.stats.tx_packets[high] == 1


def test_equal_or_lower_priority_enqueue_keeps_train():
    topo = _boot()
    port = _port_to(topo, topo.hosts[0])
    assert _run_until_train(topo, port)
    port.enqueue(_tcp_packet(), priority=0, meta=None)
    assert port._train is not None


def test_watchdog_trip_mid_train_uncoalesces_and_disables_lossless():
    topo = _boot()
    tor = topo.tor
    port = _port_to(topo, topo.hosts[0])
    registry = install_default_auditors(topo.fabric).start()
    assert _run_until_train(topo, port)
    # The storm watchdog's trip action (switch.on_watchdog_trip) must
    # first abort every committed train on the switch, then drop the
    # port out of lossless mode.
    tor.on_watchdog_trip(port)
    assert port._train is None
    assert tor.lossless_disabled(port)
    assert not port.any_paused  # force_resume_all cleared pause state
    _queue_accounting_exact(port)
    topo.sim.run(until=topo.sim.now + 2 * MS)
    # Lossless traffic to the quarantined NIC is discarded, counted...
    assert tor.counters.drops["watchdog-lossless"] > 0
    # ...and buffer/byte conservation survives the mid-train abort.
    registry.audit_now()
    assert not registry.violations_in_class(CONSERVATION_INVARIANTS)


def test_freeze_mid_train_uncoalesces_and_halts_egress():
    topo = _boot()
    port = _port_to(topo, topo.hosts[0])
    assert _run_until_train(topo, port)
    port.frozen = True
    assert port._train is None
    _queue_accounting_exact(port)
    # The wire frame finishes serializing, then egress stays dark.
    topo.sim.run(until=topo.sim.now + 1 * MS)
    tx_frozen = port.stats.total_tx_packets
    topo.sim.run(until=topo.sim.now + 1 * MS)
    assert port.stats.total_tx_packets == tx_frozen
    assert port.total_queued_packets > 0


def test_control_frame_enqueue_mid_train_uncoalesces():
    topo = _boot()
    port = _port_to(topo, topo.hosts[0])
    assert _run_until_train(topo, port)
    resume_tx = port.stats.resume_tx
    port.enqueue_control(
        Packet.pfc_pause(dst_mac=0, src_mac=0, pause=PfcPauseFrame({RDMA_PRIORITY: 0}))
    )
    assert port._train is None
    topo.sim.run(until=topo.sim.now + 1 * MS)
    assert port.stats.resume_tx == resume_tx + 1
