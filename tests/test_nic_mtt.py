"""Unit tests for the MTT cache (slow-receiver symptom substrate)."""

import pytest

from repro.nic.mtt import MttCache, MttConfig
from repro.sim.units import KB, MB


class TestMttConfig:
    def test_paper_coverage_numbers(self):
        # Section 4.4: "For 4KB page size, 2K MTT entries can only handle
        # 8MB memory."
        small_pages = MttConfig(entries=2048, page_bytes=4 * KB)
        assert small_pages.coverage_bytes == 8 * MB
        # The fix: 2 MB pages stretch the same 2K entries to 4 GB.
        large_pages = MttConfig(entries=2048, page_bytes=2 * MB)
        assert large_pages.coverage_bytes == 4 * 1024 * MB

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MttConfig(page_bytes=3000)

    def test_entries_positive(self):
        with pytest.raises(ValueError):
            MttConfig(entries=0)


class TestMttCache:
    def test_first_touch_misses_then_hits(self):
        cache = MttCache(MttConfig(entries=16, page_bytes=4 * KB, miss_penalty_ns=100))
        assert cache.touch(0, 1024) == 100
        assert cache.touch(0, 1024) == 0
        assert cache.hits == 1
        assert cache.misses == 1

    def test_access_spanning_pages_misses_each(self):
        cache = MttCache(MttConfig(entries=16, page_bytes=4 * KB, miss_penalty_ns=100))
        stall = cache.touch(0, 12 * KB)  # pages 0, 1, 2
        assert stall == 300

    def test_lru_eviction(self):
        cache = MttCache(MttConfig(entries=2, page_bytes=4 * KB, miss_penalty_ns=100))
        cache.touch(0 * 4 * KB, 1)
        cache.touch(1 * 4 * KB, 1)
        cache.touch(0 * 4 * KB, 1)  # page 0 now most recent
        cache.touch(2 * 4 * KB, 1)  # evicts page 1
        assert cache.touch(0 * 4 * KB, 1) == 0
        assert cache.touch(1 * 4 * KB, 1) == 100

    def test_working_set_within_coverage_stops_missing(self):
        cache = MttCache(MttConfig(entries=64, page_bytes=4 * KB, miss_penalty_ns=100))
        for _ in range(3):
            for page in range(32):
                cache.touch(page * 4 * KB, 1024)
        assert cache.misses == 32  # cold misses only

    def test_working_set_beyond_coverage_thrashes(self):
        cache = MttCache(MttConfig(entries=16, page_bytes=4 * KB, miss_penalty_ns=100))
        for _ in range(3):
            for page in range(64):
                cache.touch(page * 4 * KB, 1024)
        assert cache.miss_rate == 1.0

    def test_large_pages_fix_the_same_working_set(self):
        # The same byte working set that thrashes 4 KB pages fits easily
        # in 2 MB pages -- the paper's mitigation.
        working_set = 64 * MB  # >> 8 MB of 4 KB-page coverage
        step = 4 * KB

        def run(page_bytes):
            cache = MttCache(MttConfig(entries=2048, page_bytes=page_bytes, miss_penalty_ns=100))
            for _ in range(2):
                for addr in range(0, working_set, step):
                    cache.touch(addr, 1024)
            return cache.miss_rate

        assert run(4 * KB) == 1.0  # 16384 distinct pages thrash 2K entries
        assert run(2 * MB) < 0.01  # 32 pages: cold misses only

    def test_disabled_cache_never_stalls(self):
        cache = MttCache(MttConfig(enabled=False))
        assert cache.touch(0, 10 * MB) == 0
        assert cache.misses == 0

    def test_zero_bytes_no_stall(self):
        cache = MttCache(MttConfig())
        assert cache.touch(0, 0) == 0
