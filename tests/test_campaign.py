"""The campaign orchestrator: specs, cache, pool, and determinism.

The load-bearing promise is the last test class: a campaign fanned out
over worker processes produces row-for-row *identical* results to
calling the runners serially in-process -- including for a target that
injects a :class:`FaultPlan` mid-run.  Parallelism and caching must be
invisible in the artifacts, or cached sweeps would be unscientific.
"""

import json
import os
import time

import pytest

from repro.campaign import (
    Campaign,
    CampaignStore,
    ResultCache,
    Registry,
    SpecError,
    SweepSpec,
    pool,
    run_key,
)
from repro.campaign.spec import RunSpec
from repro.experiments.common import ExperimentResult, SchemaError
from repro.faults import FaultPlan, install_default_auditors
from repro.rdma.verbs import connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MS
from repro.switch.buffer import BufferConfig
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel

pytestmark = pytest.mark.campaign


# -- a seeded, fault-injected campaign target (module-level: worker
# -- processes resolve it by reference) ------------------------------------


def run_faulted_incast(duration_ns=3 * MS, seed=5, drop_probability=0.02):
    """3:1 incast with a lossy server link and a mid-run link flap."""
    topo = single_switch(
        n_hosts=4,
        seed=seed,
        buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
    ).boot()
    registry = install_default_auditors(topo.fabric, mode="record").start()
    plan = (
        FaultPlan("campaign-incast", seed=seed)
        .drop(("S1", "T0"), probability=drop_probability, match="data", at_ns=1 * MS)
        .flap_link(("S2", "T0"), at_ns=int(1.5 * MS), down_ns=100_000)
    )
    plan.apply(topo.fabric)
    rng = SeededRng(seed, "campaign-incast")
    victim = topo.hosts[0]
    qps = []
    for src in topo.hosts[1:]:
        qp, _ = connect_qp_pair(src, victim, rng)
        qps.append(qp)
        ClosedLoopSender(RdmaChannel(qp), 64 * KB).start()
    topo.sim.run(until=topo.sim.now + duration_ns)
    rows = [
        {
            "sender": "S%d" % (index + 1),
            "seed": seed,
            "data_packets": qp.stats.data_packets_sent,
            "bytes_completed": qp.stats.bytes_completed,
            "naks": qp.stats.naks_received,
            "retransmits": qp.stats.retransmitted_packets,
            "pause_frames": topo.tor.pause_frames_sent(),
            "invariant_violations": registry.violation_count,
        }
        for index, qp in enumerate(qps)
    ]
    return ExperimentResult(rows)


FAULT_REF = "tests.test_campaign:run_faulted_incast"


# -- result schema / JSONL --------------------------------------------------


class TestResultSchema:
    def test_to_jsonl_is_canonical(self, tmp_path):
        result = ExperimentResult([{"a": 1, "b": 2.5}, {"a": 3, "b": None}])
        path = tmp_path / "r.jsonl"
        text = result.to_jsonl(str(path))
        assert text == '{"a":1,"b":2.5}\n{"a":3,"b":null}\n'
        assert path.read_text() == text

    def test_missing_trailing_columns_normalize(self):
        result = ExperimentResult([{"a": 1, "b": 2}, {"a": 3}])
        assert result.normalized_rows()[1] == {"a": 3, "b": None}

    def test_out_of_order_columns_rejected(self):
        result = ExperimentResult([{"a": 1, "b": 2}, {"b": 3, "a": 4}])
        with pytest.raises(SchemaError):
            result.check_schema()

    def test_non_scalar_cell_rejected(self):
        result = ExperimentResult([{"a": [1, 2]}])
        with pytest.raises(SchemaError):
            result.to_jsonl()


# -- spec expansion ---------------------------------------------------------


class TestSweepSpec:
    def test_grid_times_seeds(self):
        spec = SweepSpec.from_dict(
            {
                "name": "t",
                "targets": [
                    {
                        "experiment": "E8",
                        "grid": {"duration_ns": [1, 2], "fanin_extra": [0, 1]},
                        "seeds": [1, 2],
                    }
                ],
            }
        )
        runs = spec.expand(Registry())
        assert len(runs) == 2 * 2 * 2
        assert len({run.run_id for run in runs}) == len(runs)
        # Deterministic expansion: same spec, same order.
        assert [r.run_id for r in runs] == [r.run_id for r in spec.expand(Registry())]

    def test_seeds_dropped_for_unseeded_runner(self):
        spec = SweepSpec.from_dict(
            {"name": "t", "targets": [{"experiment": "E10", "seeds": [1, 2, 3]}]}
        )
        runs = spec.expand(Registry())
        assert len(runs) == 1 and runs[0].seed is None

    def test_unknown_experiment_and_param_rejected(self):
        registry = Registry()
        with pytest.raises(SpecError):
            SweepSpec.from_dict(
                {"name": "t", "targets": [{"experiment": "E99"}]}
            ).expand(registry)
        with pytest.raises(SpecError):
            SweepSpec.from_dict(
                {"name": "t", "targets": [{"experiment": "E10", "grid": {"nope": [1]}}]}
            ).expand(registry)

    def test_ref_target_bypasses_registry(self):
        spec = SweepSpec.from_dict(
            {"name": "t", "targets": [{"experiment": "FX", "ref": FAULT_REF, "seeds": [7]}]}
        )
        runs = spec.expand(Registry())
        assert runs[0].ref == FAULT_REF and runs[0].seed == 7


# -- cache ------------------------------------------------------------------


class TestResultCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run = RunSpec("E10", "repro.experiments:run_cpu_overhead", {}, None)
        key = run_key(run)
        assert cache.get(key) is None
        payload = {"rows": [{"a": 1}], "schema": ["a"], "title": "t", "duration_s": 0.1}
        assert cache.put(key, payload)
        assert cache.get(key) == payload

    def test_key_depends_on_params_and_seed(self):
        base = RunSpec("E8", "repro.experiments:run_buffer_misconfig", {}, 1)
        other_seed = RunSpec("E8", "repro.experiments:run_buffer_misconfig", {}, 2)
        other_params = RunSpec(
            "E8", "repro.experiments:run_buffer_misconfig", {"duration_ns": 1}, 1
        )
        keys = {run_key(base), run_key(other_seed), run_key(other_params)}
        assert len(keys) == 3

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run = RunSpec("E10", "repro.experiments:run_cpu_overhead", {}, None)
        key = run_key(run)
        path = cache._path(key)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None


# -- worker pool ------------------------------------------------------------


def _ok_worker(payload):
    return payload * 2


def _error_worker(payload):
    if payload == 2:
        raise RuntimeError("planned failure")
    return payload


def _hang_worker(payload):
    time.sleep(60)


class TestPool:
    def test_results_and_isolation(self):
        outcomes = pool.run_tasks(
            [("a", 1), ("b", 2), ("c", 3)], _error_worker, jobs=2, retries=0
        )
        assert outcomes["a"].ok and outcomes["c"].ok
        assert outcomes["b"].status == pool.ERROR
        assert "planned failure" in outcomes["b"].error

    def test_timeout_kills_and_reports(self):
        started = time.monotonic()
        outcomes = pool.run_tasks(
            [("hang", None)], _hang_worker, jobs=1, timeout_s=0.5, retries=0
        )
        assert outcomes["hang"].status == pool.TIMEOUT
        assert time.monotonic() - started < 30

    def test_retries_count_attempts(self):
        outcomes = pool.run_tasks([("b", 2)], _error_worker, jobs=1, retries=2)
        assert outcomes["b"].attempts == 3


# -- orchestrated campaigns -------------------------------------------------


def _campaign(tmp_path, spec_dict, **kwargs):
    spec = SweepSpec.from_dict(spec_dict)
    cache = kwargs.pop("cache", None) or ResultCache(str(tmp_path / "cache"))
    out = kwargs.pop("out", None) or str(tmp_path / "out")
    kwargs.setdefault("echo", lambda line: None)
    kwargs.setdefault("timeout_s", 300.0)
    return Campaign(spec, out, cache=cache, **kwargs)


FAULT_SPEC = {
    "name": "det",
    "targets": [
        {"experiment": "E10"},
        {
            "experiment": "FAULTS",
            "ref": FAULT_REF,
            "grid": {"drop_probability": [0.02, 0.05]},
            "seeds": [5, 6],
        },
    ],
}


class TestCampaignDeterminism:
    def test_parallel_matches_serial_including_faultplan(self, tmp_path):
        report = _campaign(tmp_path, FAULT_SPEC, jobs=3).run()
        assert report.all_ok and report.total == 5

        store = CampaignStore(str(tmp_path / "out"))
        for drop_probability in (0.02, 0.05):
            for seed in (5, 6):
                serial_rows = run_faulted_incast(
                    drop_probability=drop_probability, seed=seed
                ).normalized_rows()
                run_id = RunSpec(
                    "FAULTS", FAULT_REF, {"drop_probability": drop_probability}, seed
                ).run_id
                assert store.read_run_rows(run_id) == serial_rows, run_id
        serial_e10 = (
            __import__("repro.experiments", fromlist=["run_cpu_overhead"])
            .run_cpu_overhead()
            .normalized_rows()
        )
        assert store.read_run_rows("E10") == serial_e10

    def test_rerun_is_all_cache_hits_with_identical_artifacts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        _campaign(tmp_path, FAULT_SPEC, jobs=2, cache=cache, out=str(tmp_path / "o1")).run()
        first = {
            name: (tmp_path / "o1" / "runs" / name).read_bytes()
            for name in os.listdir(tmp_path / "o1" / "runs")
        }
        report = _campaign(
            tmp_path, FAULT_SPEC, jobs=2, cache=cache, out=str(tmp_path / "o2")
        ).run()
        assert report.cache_hits == report.total == 5
        for name, content in first.items():
            assert (tmp_path / "o2" / "runs" / name).read_bytes() == content

    def test_resume_skips_completed_runs(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        campaign = _campaign(
            tmp_path,
            {"name": "r", "targets": [{"experiment": "E10"}, {"experiment": "E11"}]},
            jobs=2,
            cache=cache,
        )
        campaign.run()
        manifest = campaign.store.load_manifest()
        # Simulate an interrupted campaign: one run never completed.
        manifest["runs"]["E11"]["status"] = "pending"
        campaign.store.save_manifest(manifest)
        report = Campaign.resume(
            str(tmp_path / "out"), cache=cache, echo=lambda line: None
        )
        assert report.all_ok and report.total == 2
        final = campaign.store.load_manifest()
        assert final["runs"]["E11"]["status"] == "ok"
        assert final["totals"]["failed"] == 0

    def test_failed_run_is_isolated_and_reported(self, tmp_path):
        spec = {
            "name": "f",
            "targets": [
                {"experiment": "E10"},
                {"experiment": "BAD", "ref": "tests.test_campaign:no_such_runner"},
            ],
        }
        report = _campaign(tmp_path, spec, jobs=2, retries=0).run()
        assert report.failed == 1 and report.ok == 1
        manifest = CampaignStore(str(tmp_path / "out")).load_manifest()
        assert manifest["runs"]["E10"]["status"] == "ok"
        assert manifest["runs"]["BAD"]["status"] == "failed"
        assert "no_such_runner" in manifest["runs"]["BAD"]["error"]

    def test_manifest_records_violations_and_timings(self, tmp_path):
        report = _campaign(
            tmp_path,
            {
                "name": "v",
                "targets": [
                    {"experiment": "FAULTS", "ref": FAULT_REF, "seeds": [5]}
                ],
            },
            jobs=1,
        ).run()
        assert report.all_ok
        manifest = CampaignStore(str(tmp_path / "out")).load_manifest()
        entry = manifest["runs"]["FAULTS-s5"]
        assert entry["duration_s"] > 0
        assert isinstance(entry["violations"], int)
        assert manifest["totals"]["compute_s"] >= entry["duration_s"]
        # JSONL artifact parses and matches the recorded row count.
        rows = [
            json.loads(line)
            for line in open(entry["jsonl"])
        ]
        assert len(rows) == entry["rows"]
