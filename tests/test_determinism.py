"""Determinism: identical seeds replay bit-for-bit.

The deadlock and livelock experiments depend on exact event
interleavings; the engine promises integer-nanosecond time with FIFO
tie-breaking and per-component seeded RNG streams, so two runs of the
same experiment must produce *identical* statistics, not merely similar
ones.
"""

import pytest

from repro.faults import FaultPlan, install_default_auditors
from repro.rdma import GoBackN, QpConfig, connect_qp_pair, post_send
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.buffer import BufferConfig
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel


def incast_fingerprint(seed):
    """A digest of a congested run: every counter that could diverge."""
    topo = single_switch(
        n_hosts=4,
        seed=seed,
        buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
    ).boot()
    rng = SeededRng(seed, "det")
    victim = topo.hosts[0]
    qps = []
    for src in topo.hosts[1:]:
        qp, _ = connect_qp_pair(src, victim, rng)
        qps.append(qp)
        ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
    topo.sim.run(until=topo.sim.now + 5 * MS)
    return (
        topo.sim.events_fired,
        topo.tor.pause_frames_sent(),
        tuple(qp.stats.data_packets_sent for qp in qps),
        tuple(qp.stats.bytes_completed for qp in qps),
        tuple(p.stats.total_tx_packets for p in topo.tor.ports),
        topo.tor.buffer.peak_shared_in_use,
    )


def lossy_fingerprint(seed):
    """A digest of a loss-recovery run (random losses included)."""
    topo = single_switch(n_hosts=2, seed=seed).boot()
    link = topo.fabric.links[0]
    link.loss_rate = 0.01
    link._loss_rng = SeededRng(seed, "loss")
    rng = SeededRng(seed, "det2")
    config = QpConfig(recovery=GoBackN(), rto_ns=200 * US)
    qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=config)
    post_send(qp, 1 * MB)
    topo.sim.run(until=topo.sim.now + 20 * MS)
    return (
        qp.stats.data_packets_sent,
        qp.stats.retransmitted_packets,
        qp.stats.naks_received,
        qp.stats.timeouts,
        link.lost,
    )


def faulted_fingerprint(seed):
    """A digest of a fault-injected, audited run.

    The fault plan exercises every injector mechanism that could perturb
    event ordering: a standing probabilistic drop rule (its own RNG
    stream), a timed link flap, and a NIC freeze/repair cycle.  Same
    seed + same plan must replay bit-for-bit, auditors included.
    """
    topo = single_switch(
        n_hosts=4,
        seed=seed,
        buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
    ).boot()
    registry = install_default_auditors(topo.fabric).start()
    plan = (
        FaultPlan("det-faults", seed=seed)
        .drop(("S1", "T0"), probability=0.02, match="data")
        .flap_link(("S2", "T0"), at_ns=1 * MS, down_ns=150 * US)
        .freeze_nic_rx("S0", at_ns=2 * MS)
        .repair_nic("S0", at_ns=3 * MS)
    )
    plan.apply(topo.fabric)
    rng = SeededRng(seed, "det-faults")
    victim = topo.hosts[0]
    qps = []
    for src in topo.hosts[1:]:
        config = QpConfig(recovery=GoBackN(), rto_ns=300 * US)
        qp, _ = connect_qp_pair(src, victim, rng, config_a=config, config_b=config)
        qps.append(qp)
        ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
    topo.sim.run(until=topo.sim.now + 5 * MS)
    link_counters = tuple(
        (link.lost, link.injected_drops, link.corrupted, link.reordered, link.flaps)
        for link in topo.fabric.links
    )
    return (
        topo.sim.events_fired,
        topo.tor.pause_frames_sent(),
        tuple(qp.stats.data_packets_sent for qp in qps),
        tuple(qp.stats.retransmitted_packets for qp in qps),
        tuple(qp.stats.bytes_completed for qp in qps),
        link_counters,
        registry.ticks,
        registry.violation_count,
    )


class TestDeterminism:
    def test_congested_run_replays_exactly(self):
        assert incast_fingerprint(9) == incast_fingerprint(9)

    def test_lossy_run_replays_exactly(self):
        assert lossy_fingerprint(17) == lossy_fingerprint(17)

    def test_different_seeds_differ(self):
        assert lossy_fingerprint(17) != lossy_fingerprint(18)

    def test_fault_injected_run_replays_exactly(self):
        first = faulted_fingerprint(23)
        assert first == faulted_fingerprint(23)
        # The plan actually did something in the window we fingerprinted.
        link_counters = first[5]
        assert sum(c[1] for c in link_counters) > 0  # injected drops
        assert sum(c[4] for c in link_counters) == 1  # exactly one flap

    def test_fault_injected_runs_diverge_across_seeds(self):
        assert faulted_fingerprint(23) != faulted_fingerprint(24)

    def test_flow_model_is_pure(self):
        from repro.flows import ClosFlowModel

        first = ClosFlowModel(seed=4).run()
        second = ClosFlowModel(seed=4).run()
        assert first.rates_bps == second.rates_bps

    def test_rng_streams_are_component_isolated(self):
        # Draws from one named stream must not perturb another.
        a1 = SeededRng(5, "alpha")
        b1 = SeededRng(5, "beta")
        seq_b_fresh = [SeededRng(5, "beta").randint(0, 10**9) for _ in range(1)]
        _ = [a1.randint(0, 10**9) for _ in range(100)]  # burn alpha
        assert b1.randint(0, 10**9) == seq_b_fresh[0]

    def test_child_streams_derived_from_name(self):
        parent = SeededRng(5, "p")
        assert parent.child("x").randint(0, 10**9) == SeededRng(5, "p/x").randint(0, 10**9)
        assert parent.child("x").randint(0, 10**9) != parent.child("y").randint(0, 10**9)
