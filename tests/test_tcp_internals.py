"""Deeper unit tests for TCP internals and host dispatch."""

import pytest

from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.tcp import TcpConfig, connect_tcp_pair
from repro.topo import single_switch


def make_pair(topo, **kwargs):
    rng = SeededRng(51, "tcpi")
    return connect_tcp_pair(topo.hosts[0], topo.hosts[1], rng, **kwargs)


class TestRtoBehaviour:
    def test_rto_backs_off_exponentially(self):
        topo = single_switch(n_hosts=2).boot()
        conn_a, _ = make_pair(
            topo,
            config_a=TcpConfig(min_rto_ns=2 * MS, initial_rto_ns=2 * MS, max_rto_ns=64 * MS),
        )
        conn_a.send_message(64 * KB)
        link = topo.fabric.links[0]
        link.set_down()
        topo.sim.run(until=topo.sim.now + 40 * MS)
        # 2 + 4 + 8 + 16 ms of backoff fits ~4 RTOs in 40 ms.
        assert 3 <= conn_a.stats.rtos <= 5
        assert conn_a._rto_ns > 2 * MS  # doubled

    def test_rto_capped_at_max(self):
        topo = single_switch(n_hosts=2).boot()
        conn_a, _ = make_pair(
            topo,
            config_a=TcpConfig(min_rto_ns=1 * MS, initial_rto_ns=1 * MS, max_rto_ns=4 * MS),
        )
        conn_a.send_message(64 * KB)
        topo.fabric.links[0].set_down()
        topo.sim.run(until=topo.sim.now + 60 * MS)
        assert conn_a._rto_ns <= 4 * MS

    def test_cwnd_collapses_to_one_mss_on_rto(self):
        topo = single_switch(n_hosts=2).boot()
        conn_a, _ = make_pair(topo)
        conn_a.send_message(4 * MB)
        # Cut the link mid-transfer so data is outstanding when it dies.
        topo.sim.run(until=topo.sim.now + 200_000)
        topo.fabric.links[0].set_down()
        topo.sim.run(until=topo.sim.now + 30 * MS)
        assert conn_a.stats.rtos >= 1
        assert conn_a.cwnd == conn_a.config.mss_bytes

    def test_srtt_estimated_from_samples(self):
        topo = single_switch(n_hosts=2).boot()
        conn_a, _ = make_pair(topo)
        conn_a.send_message(512 * KB)
        topo.sim.run(until=topo.sim.now + 20 * MS)
        assert conn_a._srtt is not None
        assert 0 < conn_a._srtt < 1 * MS  # one-switch fabric


class TestReassembly:
    def test_out_of_order_segments_buffered_then_delivered(self):
        topo = single_switch(n_hosts=2).boot()
        # Drop one early segment so later ones arrive out of order.
        state = {"dropped": False}

        def drop_once(packet):
            if (
                not state["dropped"]
                and packet.is_tcp
                and packet.payload_bytes > 0
                and packet.context["seq"] > 0
            ):
                state["dropped"] = True
                return True
            return False

        topo.tor.ingress_drop_filter = drop_once
        conn_a, conn_b = make_pair(topo)
        done = []
        conn_a.send_message(128 * KB, on_delivered=done.append)
        topo.sim.run(until=topo.sim.now + 100 * MS)
        assert done
        assert conn_b.rcv_nxt >= 128 * KB

    def test_duplicate_data_is_idempotent(self):
        topo = single_switch(n_hosts=2).boot()
        conn_a, conn_b = make_pair(topo)
        done = []
        conn_a.send_message(32 * KB, on_delivered=done.append)
        topo.sim.run(until=topo.sim.now + 20 * MS)
        rcv = conn_b.rcv_nxt
        # Replay an old in-order segment by hand.
        conn_b._process_data(0, 1460)
        assert conn_b.rcv_nxt == rcv
        assert len(done) == 1

    def test_slow_start_then_congestion_avoidance(self):
        topo = single_switch(n_hosts=2).boot()
        conn_a, _ = make_pair(
            topo, config_a=TcpConfig(initial_cwnd_segments=2, max_cwnd_segments=64)
        )
        start_cwnd = conn_a.cwnd
        conn_a.send_message(1 * MB)
        topo.sim.run(until=topo.sim.now + 20 * MS)
        assert conn_a.cwnd > start_cwnd
        assert conn_a.cwnd <= 64 * conn_a.config.mss_bytes


class TestHostDispatch:
    def test_unmatched_tcp_segment_counted(self):
        topo = single_switch(n_hosts=2).boot()
        conn_a, conn_b = make_pair(topo)
        stack_b = topo.hosts[1].tcp
        # Forge a segment to a port nobody owns.
        packet = conn_a._build_segment(0, 100)
        packet.tcp.dst_port = 9
        packet.context["ack"] = 0
        stack_b._on_packet(packet)
        assert stack_b.unmatched_segments == 1

    def test_unknown_qp_counted(self):
        from repro.rdma import connect_qp_pair, post_send

        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(52, "uqp")
        qp, peer = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        engine_b = topo.hosts[1].rdma
        engine_b.destroy_qp(peer)
        post_send(qp, 4 * KB)
        topo.sim.run(until=topo.sim.now + 1 * MS)
        assert engine_b.unknown_qp_drops > 0

    def test_dead_host_not_alive(self):
        topo = single_switch(n_hosts=2).boot()
        host = topo.hosts[0]
        assert host.alive
        host.die()
        assert not host.alive
        host.repair()
        assert host.alive

    def test_stack_requires_kernel_or_rng(self):
        from repro.tcp import TcpStack

        topo = single_switch(n_hosts=1).boot()
        with pytest.raises(ValueError):
            TcpStack(topo.hosts[0])
