"""Finer-grained tests: DWRR with mixed frame sizes, pause-interval
metric, control-queue precedence, port statistics."""

import pytest

from repro.net import Device, DwrrScheduler, Link
from repro.packets import Ipv4Header, Packet, PfcPauseFrame, TcpHeader
from repro.sim import Simulator
from repro.sim.units import KB, MS, US, gbps


class Sink(Device):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append((self.sim.now, packet))


def packet(payload, dscp=0):
    return Packet.tcp_segment(
        dst_mac=2,
        src_mac=1,
        ip=Ipv4Header(src=1, dst=2, protocol=6, dscp=dscp),
        tcp=TcpHeader(src_port=7, dst_port=8),
        payload_bytes=payload,
    )


def wire(sim, scheduler=None):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    port_a = a.add_port()
    port_b = b.add_port()
    Link(sim, port_a, port_b, rate_bps=gbps(10), delay_ns=10)
    if scheduler is not None:
        port_a.scheduler = scheduler
    return port_a, b


class TestDwrrMixedSizes:
    def test_byte_fairness_with_unequal_frames(self):
        # Priority 1 sends jumbo-ish frames, priority 2 small ones; with
        # equal weights DWRR must equalize *bytes*, not packets.
        sim = Simulator()
        port, sink = wire(sim, DwrrScheduler(weights={1: 1, 2: 1}))
        for _ in range(100):
            port.enqueue(packet(4000, dscp=1), priority=1)
        for _ in range(400):
            port.enqueue(packet(1000, dscp=2), priority=2)
        sim.run(until=sim.now + 1 * MS)
        got = [p for _, p in sink.received]
        big_bytes = sum(p.payload_bytes for p in got if p.ip.dscp == 1)
        small_bytes = sum(p.payload_bytes for p in got if p.ip.dscp == 2)
        assert big_bytes > 0 and small_bytes > 0
        ratio = big_bytes / small_bytes
        assert 0.6 < ratio < 1.6

    def test_weights_shift_byte_share(self):
        sim = Simulator()
        port, sink = wire(sim, DwrrScheduler(weights={1: 4, 2: 1}))
        for _ in range(300):
            port.enqueue(packet(1000, dscp=1), priority=1)
            port.enqueue(packet(1000, dscp=2), priority=2)
        sim.run(until=sim.now + 1 * MS)
        first_half = [p for _, p in sink.received[: len(sink.received) // 2]]
        share_1 = sum(1 for p in first_half if p.ip.dscp == 1) / len(first_half)
        assert share_1 > 0.65

    def test_idle_queue_does_not_hoard_credit(self):
        sim = Simulator()
        scheduler = DwrrScheduler(weights={1: 1, 2: 1})
        port, sink = wire(sim, scheduler)
        # Queue 2 runs alone for a while...
        for _ in range(50):
            port.enqueue(packet(1000, dscp=2), priority=2)
        sim.run(until=sim.now + 100 * US)
        # ...then queue 1 joins; it must not be starved by banked credit.
        for _ in range(50):
            port.enqueue(packet(1000, dscp=1), priority=1)
            port.enqueue(packet(1000, dscp=2), priority=2)
        sim.run(until=sim.now + 1 * MS)
        tail = [p for _, p in sink.received[-60:]]
        assert any(p.ip.dscp == 1 for p in tail[:10])


class TestPortTelemetry:
    def test_pause_interval_accumulates_across_episodes(self):
        sim = Simulator()
        port, _ = wire(sim)
        port.receive_pause(PfcPauseFrame.pause([3], quanta=100))
        sim.run(until=sim.now + 50 * US)
        first = port.paused_interval_ns()
        assert first > 0
        port.receive_pause(PfcPauseFrame.pause([3], quanta=100))
        sim.run(until=sim.now + 50 * US)
        assert port.paused_interval_ns() > first

    def test_tx_stats_per_priority(self):
        sim = Simulator()
        port, sink = wire(sim)
        port.enqueue(packet(500, dscp=2), priority=2)
        port.enqueue(packet(700, dscp=5), priority=5)
        sim.run(until=sim.now + 100 * US)
        assert port.stats.tx_packets[2] == 1
        assert port.stats.tx_packets[5] == 1
        assert port.stats.tx_bytes[5] > port.stats.tx_bytes[2]
        assert port.stats.total_tx_packets == 2

    def test_control_precedes_queued_data(self):
        sim = Simulator()
        port, sink = wire(sim)
        for _ in range(5):
            port.enqueue(packet(1000), priority=0)
        pause = Packet.pfc_pause(dst_mac=1, src_mac=2, pause=PfcPauseFrame.pause([0]))
        port.enqueue_control(pause)
        sim.run(until=sim.now + 100 * US)
        kinds = [p.is_pause for _, p in sink.received]
        # The pause left ahead of every *queued* data frame (one data
        # frame may already have been in flight).
        assert True in kinds
        assert kinds.index(True) <= 1

    def test_queue_introspection(self):
        sim = Simulator()
        a = Sink(sim, "solo")
        port = a.add_port()  # unconnected: nothing drains
        port.enqueue(packet(1000), priority=3)
        port.enqueue(packet(1000), priority=3)
        assert port.queue_lengths[3] == 2
        assert port.total_queued_packets == 2
        assert port.queued_bytes[3] == 2 * packet(1000).size_bytes
        assert port.head_packet_bytes(3) == packet(1000).size_bytes
        assert port.head_packet_bytes(4) == 0
