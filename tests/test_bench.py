"""Regression gate for the ``repro.bench`` harness.

Two jobs:

1. **Determinism pinning** -- every bench scenario's fingerprint must
   equal the one recorded in ``benchmarks/BASELINE.json``.  The baseline
   was captured *before* the hot-path optimizations, so these tests are
   the proof that the optimizations changed speed and nothing else (the
   fingerprints digest event counts, per-QP stats, link and switch
   counters, and buffer peaks).
2. **Report schema** -- ``BENCH_simulator.json`` must stay machine
   readable; CI consumes it, so a malformed report fails here first.

The slowest scenarios (``clos_slice``, ``pause_storm``) are exercised by
``python -m repro.bench`` and CI's bench smoke job rather than here, to
keep the tier-1 suite quick; their fingerprints are still pinned via the
baseline comparison done by the CLI.  ``clos_pod`` (the fabric-scale
check) *is* pinned here despite its cost: it is the only scenario that
exercises cross-podset ECMP over the full three-tier wheel/coalescing
path, so drift in it must fail tier-1, not just CI.
"""

import json
import os

import pytest

from repro.bench import (
    SCENARIOS,
    SchemaViolation,
    load_baseline,
    run_benchmarks,
    validate_report,
    write_report,
)
from repro.bench.harness import build_report
from repro.bench.scenarios import digest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "BASELINE.json")

#: Scenarios cheap enough to re-run inside the tier-1 suite.  The two
#: flowsim_* entries pin the flow-level tier the same way the packet
#: scenarios pin the packet engine (their fingerprints digest the
#: engine's integer run tuple, completion CRC included).
FAST_SCENARIOS = (
    "engine_churn",
    "single_flow",
    "tcp_baseline",
    "incast_tor",
    "flowsim_churn",
    "flowsim_clos",
)


@pytest.fixture(scope="module")
def baseline():
    data = load_baseline(BASELINE_PATH)
    assert data is not None, "benchmarks/BASELINE.json missing"
    return data


class TestFingerprintPinning:
    @pytest.mark.parametrize("name", FAST_SCENARIOS)
    def test_matches_checked_in_baseline(self, name, baseline):
        run = SCENARIOS[name].run(seed=1)
        recorded = baseline["scenarios"][name]
        assert run.fingerprint == recorded["fingerprint"], (
            "scenario %r drifted from the pre-optimization baseline -- "
            "an optimization changed simulation behavior" % name
        )
        assert run.events == recorded["events"]
        assert run.packets == recorded["packets"]

    def test_clos_pod_matches_checked_in_baseline(self, baseline):
        run = SCENARIOS["clos_pod"].run(seed=1)
        recorded = baseline["scenarios"]["clos_pod"]
        assert run.fingerprint == recorded["fingerprint"], (
            "clos_pod drifted from the checked-in baseline -- timing-wheel "
            "ordering or train coalescing changed simulation behavior"
        )
        assert run.events == recorded["events"]
        assert run.packets == recorded["packets"]
        # Coalescing may only elide dispatches, never add them.
        assert run.dispatches <= run.events

    def test_baseline_covers_every_scenario(self, baseline):
        assert set(baseline["scenarios"]) == set(SCENARIOS)

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [2, 4])
    def test_clos_pod_parallel_matches_serial_baseline(
        self, workers, baseline, monkeypatch
    ):
        """The space-parallel engine's acceptance criterion: sharded
        clos_pod reproduces the *serial* baseline fingerprint
        byte-for-byte at any worker count (docs/parallel.md)."""
        from repro.bench import scenarios as bench_scenarios

        monkeypatch.setattr(bench_scenarios, "PARALLEL_WORKERS", workers)
        run = SCENARIOS["clos_pod_parallel"].run(seed=1)
        recorded = baseline["scenarios"]["clos_pod"]
        assert run.fingerprint == recorded["fingerprint"], (
            "clos_pod_parallel at %d workers diverged from the serial "
            "baseline -- the conservative-synchronization determinism "
            "contract is broken" % workers
        )
        assert run.events == recorded["events"]
        assert run.packets == recorded["packets"]
        assert run.detail["workers"] == workers
        assert run.detail["window_ns"] == 1500

    def test_repeat_is_deterministic_in_process(self):
        first = SCENARIOS["single_flow"].run(seed=1)
        second = SCENARIOS["single_flow"].run(seed=1)
        assert first.fingerprint == second.fingerprint
        assert first.events == second.events

    def test_seeds_diverge(self):
        # The seed must actually steer the run (loss pattern, ECMP ports),
        # otherwise "seeded" benchmarks would be measuring one trajectory.
        assert (
            SCENARIOS["single_flow"].run(seed=1).fingerprint
            != SCENARIOS["single_flow"].run(seed=2).fingerprint
        )


class TestReportSchema:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        scenarios = run_benchmarks(["engine_churn"], seed=1, repeat=1)
        report = build_report(
            scenarios, baseline=load_baseline(BASELINE_PATH), repeat=1
        )
        path = tmp_path_factory.mktemp("bench") / "BENCH_simulator.json"
        write_report(report, str(path))
        return json.loads(path.read_text())

    def test_roundtrips_and_validates(self, report):
        assert validate_report(report) is report
        assert report["schema"] == "repro-bench/1"
        entry = report["scenarios"]["engine_churn"]
        assert entry["events"] > 0 and entry["events_per_sec"] > 0

    def test_comparison_against_baseline(self, report):
        row = report["comparison"]["engine_churn"]
        assert row["fingerprint_match"] is True
        assert row["speedup"] > 0
        assert row["baseline_events_per_sec"] > 0

    def test_code_version_stamp(self, report):
        from repro.campaign.cache import code_version

        assert report["code_version"] == code_version()

    def test_validator_rejects_missing_field(self, report):
        broken = dict(report)
        del broken["code_version"]
        with pytest.raises(SchemaViolation, match="code_version"):
            validate_report(broken)

    def test_validator_rejects_bad_fingerprint(self, report):
        broken = json.loads(json.dumps(report))
        broken["scenarios"]["engine_churn"]["fingerprint"] = "short"
        with pytest.raises(SchemaViolation, match="fingerprint"):
            validate_report(broken)

    def test_validator_rejects_unknown_comparison(self, report):
        broken = json.loads(json.dumps(report))
        broken["comparison"]["made_up"] = {
            "baseline_events_per_sec": 1.0,
            "speedup": 1.0,
            "fingerprint_match": True,
        }
        with pytest.raises(SchemaViolation, match="made_up"):
            validate_report(broken)


def test_digest_is_stable_and_order_sensitive():
    assert digest((1, 2, 3)) == digest((1, 2, 3))
    assert digest((1, 2, 3)) != digest((3, 2, 1))
    assert len(digest((1,))) == 16
