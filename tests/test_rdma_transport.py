"""Integration tests: RDMA transport end to end over the switch model."""

import pytest

from repro.rdma import GoBack0, GoBackN, QpConfig, connect_qp_pair, post_read, post_send, post_write
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.topo import single_switch


@pytest.fixture
def topo():
    return single_switch(n_hosts=2).boot()


def make_pair(topo, config_a=None, config_b=None):
    rng = SeededRng(42, "test-qps")
    a, b = topo.hosts[0], topo.hosts[1]
    return connect_qp_pair(a, b, rng, config_a=config_a, config_b=config_b)


class TestBasicTransfer:
    def test_send_completes(self, topo):
        qp_a, qp_b = make_pair(topo)
        done = []
        post_send(qp_a, 64 * KB, on_complete=lambda wr, t: done.append(t))
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert len(done) == 1
        assert qp_a.stats.bytes_completed == 64 * KB

    def test_write_completes(self, topo):
        qp_a, qp_b = make_pair(topo)
        wr = post_write(qp_a, 256 * KB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert wr.completed

    def test_read_completes(self, topo):
        qp_a, qp_b = make_pair(topo)
        wr = post_read(qp_b, 128 * KB)  # B reads from A
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert wr.completed
        # The response data flowed A -> B.
        assert qp_a.stats.data_packets_sent >= 128

    def test_receiver_sees_message(self, topo):
        qp_a, qp_b = make_pair(topo)
        seen = []
        qp_b.on_message = lambda qp, kind, size: seen.append(kind)
        post_send(qp_a, 8 * KB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert seen == ["data"]

    def test_multiple_messages_in_order(self, topo):
        qp_a, qp_b = make_pair(topo)
        done = []
        for i in range(5):
            post_send(qp_a, 16 * KB, on_complete=lambda wr, t, i=i: done.append(i))
        topo.sim.run(until=topo.sim.now + 10 * MS)
        assert done == [0, 1, 2, 3, 4]

    def test_throughput_close_to_line_rate(self, topo):
        # 4 MB at 40 Gb/s is ~0.87 ms of wire time (1086 B frames carry
        # 1024 B payload, plus preamble/IPG).  Allow scheduling slack.
        qp_a, qp_b = make_pair(topo)
        wr = post_send(qp_a, 4 * MB)
        start = topo.sim.now
        topo.sim.run(until=start + 3 * MS)
        assert wr.completed
        elapsed = wr.completed_ns - start
        goodput_gbps = 4 * MB * 8 / elapsed  # bits per ns == Gb/s
        assert goodput_gbps > 30

    def test_transfer_exact_packet_count(self, topo):
        qp_a, qp_b = make_pair(topo)
        post_send(qp_a, 4 * MB)
        topo.sim.run(until=topo.sim.now + 3 * MS)
        # ceil(4 MiB / 1024) = 4096 packets, no loss -> no retransmits.
        assert qp_a.stats.data_packets_sent == 4096
        assert qp_a.stats.retransmitted_packets == 0

    def test_non_mtu_multiple_size(self, topo):
        qp_a, qp_b = make_pair(topo)
        sizes = []
        qp_b.on_message = lambda qp, kind, size: sizes.append(size)
        wr = post_send(qp_a, 2500)  # 1024 + 1024 + 452
        topo.sim.run(until=topo.sim.now + 1 * MS)
        assert wr.completed
        assert sizes == [452]  # last-segment payload

    def test_one_byte_message(self, topo):
        qp_a, qp_b = make_pair(topo)
        wr = post_send(qp_a, 1)
        topo.sim.run(until=topo.sim.now + 1 * MS)
        assert wr.completed


class TestLossRecovery:
    def _lossy_topo(self):
        """The paper's livelock setup: drop every packet whose IP ID ends
        in 0xff (a deterministic 1/256 loss)."""
        topo = single_switch(n_hosts=2).boot()
        topo.tor.ingress_drop_filter = (
            lambda packet: packet.ip is not None
            and packet.ip.identification & 0xFF == 0xFF
        )
        return topo

    def test_go_back_n_survives_deterministic_drop(self):
        topo = self._lossy_topo()
        config = QpConfig(recovery=GoBackN(), rto_ns=200 * US)
        qp_a, qp_b = make_pair(topo, config_a=config, config_b=config)
        wr = post_send(qp_a, 4 * MB)
        topo.sim.run(until=topo.sim.now + 20 * MS)
        assert wr.completed
        assert qp_a.stats.retransmitted_packets > 0
        assert qp_a.stats.naks_received > 0

    def test_go_back_0_livelocks(self):
        topo = self._lossy_topo()
        config = QpConfig(recovery=GoBack0(), rto_ns=200 * US)
        qp_a, qp_b = make_pair(topo, config_a=config, config_b=config)
        wr = post_send(qp_a, 4 * MB)
        topo.sim.run(until=topo.sim.now + 20 * MS)
        # Zero goodput, full effort: the livelock of section 4.1.
        assert not wr.completed
        assert qp_a.stats.bytes_completed == 0
        assert qp_a.stats.data_packets_sent > 4096  # kept the link busy

    def test_go_back_0_completes_small_messages(self):
        # Messages under 256 packets slip between deterministic drops, so
        # go-back-0 is *not* dead for small transfers -- matching the
        # paper's observation that the livelock bites large messages.
        topo = self._lossy_topo()
        config = QpConfig(recovery=GoBack0(), rto_ns=200 * US)
        qp_a, qp_b = make_pair(topo, config_a=config, config_b=config)
        wr = post_send(qp_a, 100 * KB)  # 100 packets
        topo.sim.run(until=topo.sim.now + 20 * MS)
        assert wr.completed

    def test_timeout_recovers_lost_tail(self):
        # Drop exactly one packet: the last of the message, so only the
        # RTO can notice (no later packet triggers a NAK).
        topo = single_switch(n_hosts=2).boot()
        state = {"dropped": False}

        def drop_last(packet):
            if (
                not state["dropped"]
                and packet.bth is not None
                and packet.bth.opcode.name == "SEND_LAST"
            ):
                state["dropped"] = True
                return True
            return False

        topo.tor.ingress_drop_filter = drop_last
        config = QpConfig(recovery=GoBackN(), rto_ns=200 * US)
        qp_a, qp_b = make_pair(topo, config_a=config, config_b=config)
        wr = post_send(qp_a, 8 * KB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert wr.completed
        assert qp_a.stats.timeouts >= 1

    def test_random_link_loss_recovered(self):
        topo = single_switch(n_hosts=2, seed=3).boot()
        # Make the server->ToR link lossy at 0.5%.
        link = topo.fabric.links[0]
        link.loss_rate = 0.005
        link._loss_rng = SeededRng(9, "loss")
        config = QpConfig(recovery=GoBackN(), rto_ns=200 * US)
        qp_a, qp_b = make_pair(topo, config_a=config, config_b=config)
        wr = post_send(qp_a, 2 * MB)
        topo.sim.run(until=topo.sim.now + 50 * MS)
        assert wr.completed


class TestFabricBasics:
    def test_no_drops_on_clean_fabric(self, topo):
        qp_a, qp_b = make_pair(topo)
        post_send(qp_a, 1 * MB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert topo.fabric.total_drops() == 0

    def test_arp_tables_populated_after_boot(self, topo):
        for host in topo.hosts:
            assert topo.tor.tables.arp_table.lookup(host.ip) == host.mac
            assert topo.tor.tables.mac_table.lookup(host.mac) is not None

    def test_bidirectional_traffic(self, topo):
        qp_a, qp_b = make_pair(topo)
        wr_a = post_send(qp_a, 512 * KB)
        wr_b = post_send(qp_b, 512 * KB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert wr_a.completed and wr_b.completed
