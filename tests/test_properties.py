"""Property-based tests (hypothesis) on core data structures.

These pin down the invariants the reproduction leans on: wire formats
round-trip bit-exactly, buffer accounting never leaks, max-min
allocations are feasible and fair, the event engine is causally ordered.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import install_default_auditors
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import VlanTag, mac_from_str, mac_to_str
from repro.packets.ip import Ipv4Header, checksum16, ip_from_str, ip_to_str
from repro.packets.pause import (
    MAX_QUANTA,
    PfcPauseFrame,
    ns_to_pause_quanta,
    pause_quanta_to_ns,
)
from repro.packets.rocev2 import (
    PSN_MASK,
    Aeth,
    BaseTransportHeader,
    BthOpcode,
    psn_add,
    psn_distance,
)
from repro.packets.tcp import TcpHeader
from repro.packets.udp import UdpHeader
from repro.flows.maxmin import link_utilization, max_min_allocation
from repro.sim import Simulator
from repro.sim.units import GBPS, serialization_delay_ns
from repro.switch.buffer import BufferConfig, SharedBuffer
from repro.switch.ecmp import ecmp_select
from tests.strategies import (
    buffer_ops,
    drive_incast,
    fault_plans,
    maxmin_problems,
    two_tier_dims,
)

# --- wire formats ------------------------------------------------------------


@given(pcp=st.integers(0, 7), dei=st.integers(0, 1), vid=st.integers(0, 4095))
def test_vlan_tag_round_trips(pcp, dei, vid):
    tag = VlanTag(pcp=pcp, dei=dei, vid=vid)
    assert VlanTag.unpack(tag.pack()) == tag


@given(mac=st.integers(0, (1 << 48) - 1))
def test_mac_string_round_trips(mac):
    assert mac_from_str(mac_to_str(mac)) == mac


@given(
    src=st.integers(0, 2**32 - 1),
    dst=st.integers(0, 2**32 - 1),
    dscp=st.integers(0, 63),
    ecn=st.integers(0, 3),
    ident=st.integers(0, 0xFFFF),
    ttl=st.integers(1, 255),
)
def test_ipv4_round_trips_with_valid_checksum(src, dst, dscp, ecn, ident, ttl):
    header = Ipv4Header(
        src=src, dst=dst, dscp=dscp, ecn=ecn, identification=ident, ttl=ttl
    )
    packed = header.pack()
    assert checksum16(packed) == 0
    parsed = Ipv4Header.unpack(packed)
    assert (parsed.src, parsed.dst, parsed.dscp, parsed.ecn) == (src, dst, dscp, ecn)
    assert parsed.identification == ident


@given(addr=st.integers(0, 2**32 - 1))
def test_ip_string_round_trips(addr):
    assert ip_from_str(ip_to_str(addr)) == addr


@given(
    opcode=st.sampled_from(list(BthOpcode)),
    qpn=st.integers(0, (1 << 24) - 1),
    psn=st.integers(0, PSN_MASK),
    ack_req=st.booleans(),
)
def test_bth_round_trips(opcode, qpn, psn, ack_req):
    bth = BaseTransportHeader(opcode=opcode, dest_qp=qpn, psn=psn, ack_req=ack_req)
    parsed = BaseTransportHeader.unpack(bth.pack())
    assert (parsed.opcode, parsed.dest_qp, parsed.psn, parsed.ack_req) == (
        opcode,
        qpn,
        psn,
        ack_req,
    )


@given(syndrome=st.sampled_from([0, 1, 3]), msn=st.integers(0, PSN_MASK))
def test_aeth_round_trips(syndrome, msn):
    parsed = Aeth.unpack(Aeth(syndrome=syndrome, msn=msn).pack())
    assert int(parsed.syndrome) == syndrome
    assert parsed.msn == msn


@given(
    quanta=st.dictionaries(st.integers(0, 7), st.integers(0, MAX_QUANTA), max_size=8)
)
def test_pause_frame_round_trips(quanta):
    frame = PfcPauseFrame(quanta)
    parsed = PfcPauseFrame.unpack(frame.pack())
    assert parsed.quanta == frame.quanta


@given(
    sport=st.integers(0, 65535),
    dport=st.integers(0, 65535),
    seq=st.integers(0, 2**32 - 1),
    ack=st.integers(0, 2**32 - 1),
)
def test_tcp_header_round_trips(sport, dport, seq, ack):
    parsed = TcpHeader.unpack(TcpHeader(sport, dport, seq=seq, ack=ack).pack())
    assert (parsed.src_port, parsed.dst_port, parsed.seq, parsed.ack) == (
        sport,
        dport,
        seq,
        ack,
    )


@given(sport=st.integers(0, 65535), dport=st.integers(0, 65535))
def test_udp_header_round_trips(sport, dport):
    parsed = UdpHeader.unpack(UdpHeader(sport, dport).pack())
    assert (parsed.src_port, parsed.dst_port) == (sport, dport)


@given(
    op=st.sampled_from([1, 2]),
    smac=st.integers(0, (1 << 48) - 1),
    sip=st.integers(0, 2**32 - 1),
    tmac=st.integers(0, (1 << 48) - 1),
    tip=st.integers(0, 2**32 - 1),
)
def test_arp_round_trips(op, smac, sip, tmac, tip):
    parsed = ArpPacket.unpack(ArpPacket(op, smac, sip, tmac, tip).pack())
    assert (parsed.op, parsed.sender_mac, parsed.sender_ip) == (op, smac, sip)
    assert (parsed.target_mac, parsed.target_ip) == (tmac, tip)


# --- arithmetic invariants -----------------------------------------------------


@given(psn=st.integers(0, PSN_MASK), delta=st.integers(0, PSN_MASK))
def test_psn_add_then_distance_inverts(psn, delta):
    assert psn_distance(psn_add(psn, delta), psn) == delta


@given(quanta=st.integers(1, MAX_QUANTA), rate=st.sampled_from([10, 25, 40, 50, 100]))
def test_pause_quanta_conversion_round_trips_upward(quanta, rate):
    ns = pause_quanta_to_ns(quanta, rate * GBPS)
    back = ns_to_pause_quanta(ns, rate * GBPS)
    assert quanta - 1 <= back <= quanta + 1


@given(nbytes=st.integers(1, 10_000), rate=st.sampled_from([1, 10, 40, 100]))
def test_serialization_delay_never_exceeds_line_rate(nbytes, rate):
    ns = serialization_delay_ns(nbytes, rate * GBPS)
    # ceil rounding: delay covers at least the exact wire time.
    assert ns * rate >= nbytes * 8  # rate Gb/s == bits per ns


@given(
    tup=st.tuples(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 255),
        st.integers(0, 65535),
        st.integers(0, 65535),
    ),
    n=st.integers(1, 64),
    seed=st.integers(0, 2**32 - 1),
)
def test_ecmp_select_in_range_and_deterministic(tup, n, seed):
    choice = ecmp_select(tup, n, seed)
    assert 0 <= choice < n
    assert ecmp_select(tup, n, seed) == choice


# --- shared buffer conservation --------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(ops=buffer_ops(n_ports=4, priorities=(0, 3)))
def test_buffer_admit_release_conserves(ops):
    buffer = SharedBuffer(
        BufferConfig(alpha=None, xoff_static_bytes=64 * 1024),
        n_ports=4,
        lossless_priorities=(3,),
    )
    admitted = []
    for port, priority, nbytes in ops:
        if buffer.admit(port, priority, nbytes, lossless=(priority == 3)):
            admitted.append((port, priority, nbytes))
    assert buffer.total_occupancy == sum(n for _, _, n in admitted)
    for port, priority, nbytes in admitted:
        buffer.release(port, priority, nbytes)
    assert buffer.total_occupancy == 0
    assert buffer.shared_in_use == 0


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(64, 9000), min_size=1, max_size=100),
    alpha=st.sampled_from([1.0 / 4, 1.0 / 16, 1.0 / 64]),
)
def test_dynamic_threshold_never_negative_and_monotone(sizes, alpha):
    buffer = SharedBuffer(BufferConfig(alpha=alpha), n_ports=2, lossless_priorities=(3,))
    previous = buffer.threshold()
    for nbytes in sizes:
        buffer.admit(0, 3, nbytes, lossless=True)
        current = buffer.threshold()
        assert current >= 0
        assert current <= previous  # filling can only shrink it
        previous = current


# --- max-min allocation ------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(problem=maxmin_problems())
def test_maxmin_is_feasible_and_positive(problem):
    links, paths = problem
    rates = max_min_allocation(links, paths)
    assert all(rate > 0 for rate in rates)
    loads = link_utilization(links, paths, rates)
    for link, load in loads.items():
        assert load <= 1.0 + 1e-9  # never oversubscribed


@settings(max_examples=50, deadline=None)
@given(n_flows=st.integers(1, 30), capacity=st.integers(1, 1000))
def test_maxmin_single_link_is_equal_split(n_flows, capacity):
    rates = max_min_allocation({"l": float(capacity)}, [["l"]] * n_flows)
    assert all(abs(rate - capacity / n_flows) < 1e-9 for rate in rates)


def test_maxmin_rejects_nonpositive_capacities():
    with pytest.raises(ValueError, match="non-positive capacity"):
        max_min_allocation({"l": 0}, [["l"]])
    with pytest.raises(ValueError, match="non-positive capacity"):
        max_min_allocation({"l": -5.0}, [["l"]])


def test_maxmin_rejects_empty_capacity_map_with_routed_flows():
    with pytest.raises(ValueError, match="no link capacities"):
        max_min_allocation({}, [["l"]])


def test_maxmin_rejects_unknown_links_with_flow_index():
    with pytest.raises(KeyError, match="flow 1 uses unknown link"):
        max_min_allocation({"l": 1.0}, [["l"], ["m"]])


def test_maxmin_degenerate_inputs_still_allocate():
    # No flows at all, and flows with empty paths, are fine.
    assert max_min_allocation({}, []) == []
    assert max_min_allocation({"l": 1.0}, [[]]) == [0.0]


# --- fault injection / invariant auditors ----------------------------------------


def _drive_incast(topo, seed, message_bytes=64 * 1024):
    from repro.sim import SeededRng

    drive_incast(
        topo, 2, SeededRng(seed, "prop-traffic"), message_bytes=message_bytes
    )


@pytest.mark.faults
@settings(max_examples=8, deadline=None)
@given(dims=two_tier_dims(), seed=st.integers(0, 10_000))
def test_random_clos_under_load_never_trips_auditors_fault_free(dims, seed):
    # The auditors must never cry wolf: any well-formed topology running
    # ordinary congestion (no faults at all) stays violation-free.  Runs
    # in raise mode so the first false positive explains itself.
    from repro.sim.units import MS
    from repro.topo import two_tier

    topo = two_tier(seed=seed, **dims).boot()
    registry = install_default_auditors(topo.fabric, mode="raise").start()
    _drive_incast(topo, seed)
    topo.sim.run(until=topo.sim.now + 2 * MS)
    assert registry.clean
    assert registry.ticks >= 15


@pytest.mark.faults
@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_buffer_accounting_survives_random_fault_plans(data):
    # Conservation is unconditional: whatever combination of flaps,
    # drops, corruption and reordering a random FaultPlan throws at the
    # fabric, every buffered byte stays exactly accounted.  (Liveness
    # invariants like pause-bounded are *supposed* to trip under some of
    # these plans, so only conservation is asserted.)
    from repro.sim.units import MS
    from repro.topo import two_tier

    seed = data.draw(st.integers(0, 10_000), label="seed")
    topo = two_tier(n_tors=2, hosts_per_tor=2, n_leaves=1, seed=seed).boot()
    fabric = topo.fabric
    registry = install_default_auditors(fabric).start()

    plan = data.draw(
        fault_plans(n_links=len(fabric.links), seed=seed), label="plan"
    )
    plan.apply(fabric)
    _drive_incast(topo, seed)
    topo.sim.run(until=topo.sim.now + 3 * MS)
    assert not registry.violations_for("buffer-conservation")
    assert not registry.violations_for("nic-rx-conservation")
    assert not registry.violations_for("psn-monotonic")


# --- event engine ordering ------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run_until_idle()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert sorted(d for _, d in fired) == sorted(delays)
    # And each callback observed its own schedule time.
    assert all(t == d for t, d in fired)
