"""Tests for posted receives and RNR NAK handling."""

import pytest

from repro.rdma import QpConfig, connect_qp_pair, post_recv, post_send, post_write
from repro.sim import SeededRng
from repro.sim.units import KB, MS, US
from repro.topo import single_switch


def rnr_pair(topo, **config_kwargs):
    rng = SeededRng(41, "rnr")
    config_kwargs.setdefault("require_posted_receives", True)
    config_kwargs.setdefault("rnr_retry_delay_ns", 100 * US)
    return connect_qp_pair(
        topo.hosts[0],
        topo.hosts[1],
        rng,
        config_a=QpConfig(**config_kwargs),
        config_b=QpConfig(**config_kwargs),
    )


class TestRnr:
    def test_send_blocks_without_receive_wqe(self):
        topo = single_switch(n_hosts=2).boot()
        qp_a, qp_b = rnr_pair(topo)
        wr = post_send(qp_a, 8 * KB)
        topo.sim.run(until=topo.sim.now + 3 * MS)
        assert not wr.completed
        assert qp_b.stats.rnr_naks_sent > 0
        assert qp_a.stats.rnr_naks_received > 0

    def test_send_completes_once_receive_posted(self):
        topo = single_switch(n_hosts=2).boot()
        qp_a, qp_b = rnr_pair(topo)
        wr = post_send(qp_a, 8 * KB)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert not wr.completed
        post_recv(qp_b)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert wr.completed
        assert qp_b.recv_credits == 0  # the SEND consumed it

    def test_prepost_avoids_rnr_entirely(self):
        topo = single_switch(n_hosts=2).boot()
        qp_a, qp_b = rnr_pair(topo)
        post_recv(qp_b, count=3)
        wrs = [post_send(qp_a, 4 * KB) for _ in range(3)]
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert all(wr.completed for wr in wrs)
        assert qp_b.stats.rnr_naks_sent == 0

    def test_writes_need_no_receive_wqe(self):
        # RDMA WRITE targets registered memory directly; no WQE consumed.
        topo = single_switch(n_hosts=2).boot()
        qp_a, qp_b = rnr_pair(topo)
        wr = post_write(qp_a, 8 * KB)
        topo.sim.run(until=topo.sim.now + 3 * MS)
        assert wr.completed
        assert qp_b.stats.rnr_naks_sent == 0

    def test_backlog_of_sends_drains_as_receives_arrive(self):
        topo = single_switch(n_hosts=2).boot()
        qp_a, qp_b = rnr_pair(topo)
        wrs = [post_send(qp_a, 4 * KB) for _ in range(3)]
        for _ in range(3):
            post_recv(qp_b)
            topo.sim.run(until=topo.sim.now + 2 * MS)
        assert all(wr.completed for wr in wrs)

    def test_disabled_by_default(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(42, "norr")
        qp_a, qp_b = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        wr = post_send(qp_a, 8 * KB)
        topo.sim.run(until=topo.sim.now + 2 * MS)
        assert wr.completed  # pre-posted-ring model: no RNR machinery

    def test_post_recv_validates(self):
        topo = single_switch(n_hosts=2).boot()
        qp_a, _ = rnr_pair(topo)
        with pytest.raises(ValueError):
            post_recv(qp_a, count=0)
