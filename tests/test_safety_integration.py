"""Capstone integration: one hostile day, two deployment postures.

Everything the paper survived, thrown at one fabric simultaneously:

* random packet corruption on a link (the section 4.1 trigger);
* a dead server whose MAC entry expired while its ARP entry lives (the
  section 4.2 deadlock trigger);
* a NIC whose receive pipeline dies while it keeps pausing (the
  section 4.3 storm trigger).

Under the *naive* profile (vendor go-back-0, lossless flooding allowed,
no watchdogs) the healthy traffic should suffer badly; under the
*paper-safe* profile (go-back-N, incomplete-ARP drop, both watchdogs)
the healthy flow keeps completing messages and no deadlock forms.
"""

import pytest

from repro.core import detect_deadlock, naive_profile, paper_safe_profile
from repro.core.safety import SafetyProfile
from repro.nic.nic import NicWatchdogConfig
from repro.rdma import QpConfig, connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.watchdog import SwitchWatchdogConfig
from repro.topo import deadlock_quad
from repro.workloads import ClosedLoopSender, RdmaChannel


def hostile_day(profile, duration_ns=10 * MS, seed=61):
    topo = deadlock_quad(
        seed=seed,
        buffer_config=profile.buffer_config(
            alpha=None, xoff_static_bytes=96 * KB, headroom_per_pg_bytes=40 * KB
        ),
        forwarding_kwargs=profile.forwarding_kwargs(),
    ).boot()
    sim = topo.sim
    hosts = topo.hosts
    switches = [topo.t0, topo.t1, topo.la, topo.lb]
    # Arm runtime protections per profile (compressed timescales).
    for host in hosts.values():
        host.nic.config.watchdog_config = NicWatchdogConfig(
            stall_threshold_ns=1 * MS,
            poll_interval_ns=200 * US,
            enabled=profile.nic_watchdog_enabled,
        )
        if profile.nic_watchdog_enabled:
            host.nic._watchdog.start(200 * US)
        else:
            host.nic._watchdog.cancel()
    if profile.switch_watchdog_enabled:
        for switch in (topo.t0, topo.t1):
            switch.enable_storm_watchdog(
                SwitchWatchdogConfig(poll_interval_ns=200 * US, reenable_after_ns=2 * MS)
            )
    rng = SeededRng(seed, "hostile-%s" % profile.name)

    # Fault 1: FCS-style random corruption on the healthy path.
    s1_link = hosts["S1"].port.link
    s1_link.loss_rate = 0.002
    s1_link._loss_rng = rng.child("loss")
    # Fault 2: S3 is dead, MAC expired, ARP alive.
    hosts["S3"].die()
    topo.t1.tables.mac_table.expire(hosts["S3"].mac)
    # Fault 3: S2's NIC storms.
    hosts["S2"].nic.break_rx_pipeline()

    def saturate(src, dst):
        config = QpConfig(
            recovery=profile.recovery(), window_packets=1024, rto_ns=300 * US
        )
        peer = QpConfig(recovery=profile.recovery())
        qp, _ = connect_qp_pair(hosts[src], hosts[dst], rng, config_a=config, config_b=peer)
        return ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()

    saturate("S1", "S3")  # flood fodder
    saturate("S6", "S3")
    healthy = saturate("S1", "S5")  # the flow that must survive
    saturate("S7", "S5")
    saturate("S4", "S2")  # into the storming NIC

    sim.run(until=sim.now + duration_ns)
    return {
        "healthy_messages": healthy.completed_messages,
        "deadlocked": detect_deadlock(switches).deadlocked,
        "storm_pauses": hosts["S2"].nic.stats.pause_generated,
        "nic_watchdog_trips": hosts["S2"].nic.watchdog_trips,
    }


class TestHostileDay:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {
            "naive": hostile_day(naive_profile()),
            "safe": hostile_day(paper_safe_profile()),
        }

    def test_naive_profile_suffers(self, outcomes):
        naive = outcomes["naive"]
        # Go-back-0 under corruption + a jammed fabric: little or no
        # application progress.
        assert naive["healthy_messages"] <= 1
        assert naive["nic_watchdog_trips"] == 0

    def test_safe_profile_survives(self, outcomes):
        safe = outcomes["safe"]
        assert not safe["deadlocked"]
        assert safe["healthy_messages"] >= 3
        assert safe["nic_watchdog_trips"] >= 1

    def test_safe_beats_naive(self, outcomes):
        assert (
            outcomes["safe"]["healthy_messages"]
            > outcomes["naive"]["healthy_messages"]
        )
