"""Tests for the figure 9(a) server health tracker."""

import pytest

from repro.monitoring import HealthTracker, Pingmesh, ServerState
from repro.monitoring.pingmesh import ProbeResult
from repro.sim import SeededRng
from repro.sim.units import MS
from repro.topo import single_switch


def ok(dst, t=0):
    return ProbeResult(t, "src", dst, rtt_ns=1000)


def fail(dst, t=0):
    return ProbeResult(t, "src", dst, error="timeout")


class TestStateMachine:
    def test_starts_healthy(self):
        tracker = HealthTracker()
        assert tracker.state_of("s") == ServerState.HEALTHY

    def test_consecutive_failures_fail_the_server(self):
        tracker = HealthTracker(fail_threshold=3)
        tracker.observe_all([fail("s"), fail("s")])
        assert tracker.state_of("s") == ServerState.HEALTHY
        tracker.observe(fail("s"))
        assert tracker.state_of("s") == ServerState.FAILING

    def test_sporadic_failures_do_not(self):
        tracker = HealthTracker(fail_threshold=3)
        tracker.observe_all([fail("s"), ok("s"), fail("s"), ok("s"), fail("s")])
        assert tracker.state_of("s") == ServerState.HEALTHY

    def test_recovery_goes_through_probation(self):
        tracker = HealthTracker(fail_threshold=2, probation_successes=2)
        tracker.observe_all([fail("s"), fail("s")])
        assert tracker.state_of("s") == ServerState.FAILING
        tracker.observe_all([ok("s"), ok("s")])
        assert tracker.state_of("s") == ServerState.PROBATION
        tracker.observe_all([ok("s"), ok("s")])
        assert tracker.state_of("s") == ServerState.HEALTHY

    def test_failure_in_probation_returns_to_failing(self):
        tracker = HealthTracker(fail_threshold=2, probation_successes=2)
        tracker.observe_all([fail("s"), fail("s"), ok("s"), ok("s")])
        assert tracker.state_of("s") == ServerState.PROBATION
        tracker.observe_all([fail("s"), fail("s")])
        assert tracker.state_of("s") == ServerState.FAILING

    def test_census_and_availability(self):
        tracker = HealthTracker(fail_threshold=1)
        tracker.observe_all([ok("a"), ok("b"), fail("c")])
        census = tracker.census()
        assert census[ServerState.HEALTHY] == 2
        assert census[ServerState.FAILING] == 1
        assert tracker.availability() == pytest.approx(2 / 3)
        assert tracker.failing_hosts() == ["c"]

    def test_transitions_logged(self):
        tracker = HealthTracker(fail_threshold=1)
        tracker.observe(fail("s", t=42))
        assert tracker.transitions == [
            (42, "s", ServerState.HEALTHY, ServerState.FAILING)
        ]


class TestWithPingmesh:
    def test_storming_nic_marked_failing(self):
        # Figure 9(a) end to end: the stormy server's probes fail and
        # the tracker flips it to F while bystanders stay H.
        topo = single_switch(n_hosts=3).boot()
        rng = SeededRng(81, "health")
        pingmesh = Pingmesh(topo.sim, rng, interval_ns=1 * MS)
        pingmesh.add_pair(topo.hosts[1], topo.hosts[0])  # victim as dst
        pingmesh.add_pair(topo.hosts[1], topo.hosts[2])  # bystander as dst
        topo.hosts[0].nic.break_rx_pipeline()
        pingmesh.start()
        topo.sim.run(until=topo.sim.now + 20 * MS)
        tracker = HealthTracker().observe_all(pingmesh.results)
        assert tracker.state_of(topo.hosts[0].name) == ServerState.FAILING
        assert tracker.state_of(topo.hosts[2].name) == ServerState.HEALTHY
