"""Unit tests for the shared-buffer manager and headroom sizing."""

import pytest

from repro.sim.units import KB, MB, gbps
from repro.switch.buffer import BufferConfig, SharedBuffer, headroom_bytes


def make_buffer(alpha=1.0 / 16, total=12 * MB, **kwargs):
    config = BufferConfig(total_bytes=total, alpha=alpha, **kwargs)
    return SharedBuffer(config, n_ports=8, lossless_priorities=(3,))


class TestHeadroom:
    def test_grows_with_cable_length(self):
        short = headroom_bytes(gbps(40), cable_meters=2)
        long = headroom_bytes(gbps(40), cable_meters=300)
        assert long > short
        # 300 m adds 2 x 1490 ns of flight time = 14900 B at 40 Gb/s.
        assert long - short == 14900

    def test_grows_with_rate(self):
        assert headroom_bytes(gbps(100), 300) > headroom_bytes(gbps(40), 300)

    def test_paper_two_lossless_classes_fit_shallow_buffer(self):
        # Section 2: with 300 m cables and a 9 MB ToR buffer, only two
        # lossless classes can get per-port headroom on a 32-port switch.
        per_pg = headroom_bytes(gbps(40), cable_meters=300)
        n_ports = 32
        total = 9 * MB
        shared_floor = 4 * MB  # need most of the buffer for actual queueing

        def fits(n_classes):
            return n_ports * n_classes * per_pg <= total - shared_floor

        assert fits(2)
        assert not fits(8)


class TestStaticThreshold:
    def test_admit_below_threshold(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB)
        assert buf.admit(0, 3, 50 * KB, lossless=True)
        assert buf.occupancy(0, 3) == 50 * KB

    def test_lossy_drop_over_threshold(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB)
        assert buf.admit(0, 0, 96 * KB, lossless=False)
        assert not buf.admit(0, 0, 10 * KB, lossless=False)
        assert buf.lossy_drops == 1

    def test_lossless_spills_into_headroom(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB, headroom_per_pg_bytes=26 * KB)
        assert buf.admit(0, 3, 96 * KB, lossless=True)
        assert buf.admit(0, 3, 20 * KB, lossless=True)  # headroom
        state = buf.pg(0, 3)
        assert state.headroom_used == 20 * KB

    def test_headroom_exhaustion_drops(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB, headroom_per_pg_bytes=26 * KB)
        buf.admit(0, 3, 96 * KB, lossless=True)
        buf.admit(0, 3, 26 * KB, lossless=True)  # fills headroom exactly
        assert not buf.admit(0, 3, 4 * KB, lossless=True)
        assert buf.headroom_overflow_drops == 1

    def test_release_drains_headroom_first(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB)
        buf.admit(0, 3, 96 * KB, lossless=True)
        buf.admit(0, 3, 10 * KB, lossless=True)
        buf.release(0, 3, 12 * KB)
        state = buf.pg(0, 3)
        assert state.headroom_used == 0
        assert buf.occupancy(0, 3) == 94 * KB

    def test_release_underflow_raises(self):
        buf = make_buffer()
        buf.admit(0, 3, KB, lossless=True)
        with pytest.raises(RuntimeError):
            buf.release(0, 3, 2 * KB)


class TestDynamicThreshold:
    def test_threshold_shrinks_as_buffer_fills(self):
        buf = make_buffer(alpha=1.0 / 16)
        t0 = buf.threshold()
        for port in range(8):
            assert buf.admit(port, 0, 256 * KB, lossless=False)
        assert buf.threshold() < t0

    def test_alpha_64_pauses_far_earlier_than_alpha_16(self):
        # The section 6.2 incident: the new switch model shipped with
        # alpha = 1/64 instead of 1/16, so pauses fired ~4x earlier.
        buf16 = make_buffer(alpha=1.0 / 16)
        buf64 = make_buffer(alpha=1.0 / 64)
        ratio = buf16.threshold() / buf64.threshold()
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_should_pause_above_dynamic_threshold(self):
        buf = make_buffer(alpha=1.0 / 64)
        # Fill the PG packet by packet until it crosses the (moving)
        # dynamic threshold; the crossing packet lands in headroom.
        for _ in range(1000):
            assert buf.admit(0, 3, 1 * KB, lossless=True)
            if buf.should_pause(0, 3):
                break
        assert buf.should_pause(0, 3)
        assert buf.pg(0, 3).headroom_used > 0

    def test_pause_resume_hysteresis(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB, xon_delta_bytes=4 * KB)
        buf.admit(0, 3, 96 * KB, lossless=True)  # shared occupancy: 94 KB
        buf.admit(0, 3, 6 * KB, lossless=True)  # crosses XOFF -> headroom
        assert buf.should_pause(0, 3)
        buf.pg(0, 3).paused = True
        assert not buf.should_pause(0, 3)  # already paused
        buf.release(0, 3, 6 * KB)  # headroom drained; 94 KB > XON (92 KB)
        assert not buf.should_resume(0, 3)
        buf.release(0, 3, 4 * KB)  # 90 KB <= 92 KB -> resume
        assert buf.should_resume(0, 3)

    def test_headroom_usage_forces_pause(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB)
        buf.admit(0, 3, 96 * KB, lossless=True)
        buf.admit(0, 3, 5 * KB, lossless=True)  # into headroom
        assert buf.should_pause(0, 3)
        buf.pg(0, 3).paused = True
        assert not buf.should_resume(0, 3)  # headroom still occupied

    def test_pgs_are_isolated(self):
        buf = make_buffer(alpha=None, xoff_static_bytes=96 * KB)
        buf.admit(0, 3, 96 * KB, lossless=True)
        buf.admit(0, 3, 6 * KB, lossless=True)
        assert buf.should_pause(0, 3)
        assert not buf.should_pause(1, 3)
        assert buf.occupancy(1, 3) == 0

    def test_shared_in_use_tracks_admission_and_release(self):
        buf = make_buffer(guaranteed_per_pg_bytes=0)
        buf.admit(0, 3, 10 * KB, lossless=True)
        buf.admit(1, 3, 5 * KB, lossless=True)
        assert buf.shared_in_use == 15 * KB
        buf.release(0, 3, 10 * KB)
        assert buf.shared_in_use == 5 * KB
        assert buf.peak_shared_in_use == 15 * KB

    def test_guaranteed_bytes_do_not_draw_from_shared_pool(self):
        buf = make_buffer(guaranteed_per_pg_bytes=2 * KB)
        buf.admit(0, 3, 1 * KB, lossless=True)
        assert buf.shared_in_use == 0
        buf.admit(0, 3, 3 * KB, lossless=True)
        assert buf.shared_in_use == 2 * KB


class TestConfigValidation:
    def test_zero_alpha_rejected(self):
        with pytest.raises(ValueError):
            BufferConfig(alpha=0)

    def test_nonpositive_total_rejected(self):
        with pytest.raises(ValueError):
            BufferConfig(total_bytes=0)

    def test_headroom_cannot_eat_whole_buffer(self):
        config = BufferConfig(total_bytes=1 * MB, headroom_per_pg_bytes=1 * MB)
        with pytest.raises(ValueError):
            SharedBuffer(config, n_ports=8, lossless_priorities=(3, 4))
