"""The space-parallel engine: partitioner, codec, and the determinism
contract (parallel fingerprints byte-identical to serial).

The heavyweight fabric-scale pins (clos_pod at 2 and 4 workers against
the checked-in baseline) live in ``tests/test_bench.py`` next to the
serial pin; this suite covers the machinery on fabrics small enough to
differential-test serially *and* sharded inside tier-1.

Run alone with ``pytest -m parallel``.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SeededRng
from repro.sim.units import MB
from repro.topo import single_switch, three_tier_clos, two_tier
from repro.topo.partition import (
    PartitionError,
    link_endpoints,
    partition_fabric,
)

pytestmark = pytest.mark.parallel

DURATION_NS = 300_000


def small_clos(seed):
    """The smallest three-tier Clos with cross-podset traffic: cheap
    enough to run serially and sharded inside one test."""
    topo = three_tier_clos(
        n_podsets=2,
        tors_per_podset=2,
        hosts_per_tor=2,
        leaves_per_podset=2,
        n_spines=2,
        seed=seed,
    )
    for switch in topo.fabric.switches:
        switch.ecmp_seed = zlib.crc32(switch.name.encode())
    return topo


def cross_pod_pairs(topo):
    hosts = topo.hosts
    half = len(hosts) // 2
    pairs = [(hosts[i], hosts[half + i]) for i in range(half)]
    pairs += [(hosts[half + i], hosts[i]) for i in range(half)]
    return pairs


def serial_fingerprint(duration_ns=DURATION_NS, seed=1):
    """The serial reference tuple the parallel merges must reproduce."""
    from repro.bench.scenarios import _link_counters, _switch_counters
    from repro.experiments.common import saturate_pairs

    topo = small_clos(seed).boot()
    sim = topo.sim
    rng = SeededRng(seed, "test/parallel")
    senders = saturate_pairs(sim, cross_pod_pairs(topo), 1 * MB, rng)
    sim.run(until=sim.now + duration_ns)
    return (
        sim.events_fired,
        tuple(s.completed_bytes for s in senders),
        topo.fabric.total_drops(),
        _switch_counters(topo.fabric),
        _link_counters(topo.fabric),
    )


def parallel_fingerprint(n_workers, executor, duration_ns=DURATION_NS, seed=1):
    from repro.bench.scenarios import (
        _link_counters,
        _switch_counters,
        _sum_tuples,
    )
    from repro.experiments.common import saturate_pairs
    from repro.sim.parallel import run_parallel

    def start(topo, seed, harness):
        rng = SeededRng(seed, "test/parallel")
        index_of = {id(h): i for i, h in enumerate(topo.fabric.hosts)}
        return saturate_pairs(
            topo.sim,
            cross_pod_pairs(topo),
            1 * MB,
            rng,
            start_filter=lambda _i, p: index_of[id(p[0])] in harness.local_hosts,
        )

    def report(topo, senders, harness):
        return {
            "completed": tuple(s.completed_bytes for s in senders),
            "drops": topo.fabric.total_drops(),
            "switches": _switch_counters(topo.fabric),
            "links": _link_counters(topo.fabric),
        }

    result = run_parallel(
        small_clos,
        n_workers,
        duration_ns=duration_ns,
        seed=seed,
        settle_ns=100_000,
        start=start,
        report=report,
        executor=executor,
    )
    reports = result.shard_reports
    return (
        result.events,
        _sum_tuples([r["completed"] for r in reports]),
        sum(r["drops"] for r in reports),
        _sum_tuples([r["switches"] for r in reports]),
        _sum_tuples([r["links"] for r in reports]),
    ), result


# --- partitioner -------------------------------------------------------------


class TestPartitioner:
    @pytest.fixture(scope="class")
    def pod_fabric(self):
        return three_tier_clos(
            n_podsets=2,
            tors_per_podset=4,
            hosts_per_tor=4,
            leaves_per_podset=4,
            n_spines=4,
            seed=1,
        ).fabric

    def test_trivial_single_shard(self, pod_fabric):
        part = partition_fabric(pod_fabric, 1)
        assert part.n_shards == 1
        assert part.cut_links == ()
        assert part.window_ns is None
        assert set(part.host_shard) == {0} and set(part.switch_shard) == {0}

    def test_clos_pod_two_shards_balanced(self, pod_fabric):
        part = partition_fabric(pod_fabric, 2)
        assert part.n_shards == 2
        # One podset per shard, spines split evenly between them.
        assert [len(part.hosts_in(s)) for s in range(2)] == [16, 16]
        assert [len(part.switches_in(s)) for s in range(2)] == [10, 10]
        # Cuts ride the 300 m leaf<->spine tier.
        assert part.window_ns == 1500
        for link_idx in part.cut_links:
            assert pod_fabric.links[link_idx].delay_ns >= part.window_ns

    def test_clos_pod_four_shards(self, pod_fabric):
        part = partition_fabric(pod_fabric, 4)
        assert part.n_shards == 4
        assert sorted(len(part.hosts_in(s)) for s in range(4)) == [0, 0, 16, 16]
        assert part.window_ns == 1500

    def test_deterministic(self, pod_fabric):
        a = partition_fabric(pod_fabric, 2)
        b = partition_fabric(pod_fabric, 2)
        assert a.host_shard == b.host_shard
        assert a.switch_shard == b.switch_shard
        assert a.cut_links == b.cut_links

    def test_single_switch_refuses(self):
        fabric = single_switch(n_hosts=3, seed=1).fabric
        with pytest.raises(PartitionError, match="no switch<->switch links"):
            partition_fabric(fabric, 2)

    def test_too_many_shards_refuses(self, pod_fabric):
        with pytest.raises(PartitionError):
            partition_fabric(pod_fabric, 10_000)


@given(dims=st.fixed_dictionaries(
    {
        "n_tors": st.integers(1, 3),
        "hosts_per_tor": st.integers(1, 3),
        "n_leaves": st.integers(1, 3),
    }
), n_shards=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_partition_properties_on_random_fabrics(dims, n_shards):
    """Over random two-tier fabrics: cut latency bounds the window,
    hosts stay with their ToR, and every shard is internally connected."""
    fabric = two_tier(seed=1, **dims).fabric
    # Any two-tier fabric splits into at least 1 + n_leaves pieces when
    # every ToR<->leaf link is cut, so feasibility is decidable up front.
    max_pieces = dims["n_tors"] + dims["n_leaves"]
    if n_shards > max_pieces:
        with pytest.raises(PartitionError):
            partition_fabric(fabric, n_shards)
        return
    part = partition_fabric(fabric, n_shards)

    cut = set(part.cut_links)
    nodes_of_shard = {s: set() for s in range(n_shards)}
    for i, s in enumerate(part.host_shard):
        nodes_of_shard[s].add(("h", i))
    for j, s in enumerate(part.switch_shard):
        nodes_of_shard[s].add(("s", j))

    adjacency = {}
    for link_idx, link in enumerate(fabric.links):
        a, b = link_endpoints(fabric, link)
        if link_idx in cut:
            # Every cut is switch<->switch (hosts never leave their ToR)
            # and at least one lookahead window away.
            assert a[0] == "s" and b[0] == "s"
            assert link.delay_ns >= part.window_ns
            assert part.shard_of_node(a) != part.shard_of_node(b)
        else:
            assert part.shard_of_node(a) == part.shard_of_node(b)
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)

    for shard, members in nodes_of_shard.items():
        if not members:
            continue
        seen = set()
        queue = [min(members)]
        seen.add(min(members))
        while queue:
            node = queue.pop()
            for other in adjacency.get(node, ()):
                if other not in seen:
                    seen.add(other)
                    queue.append(other)
        assert seen == members, "shard %d is not connected" % shard


# --- codec -------------------------------------------------------------------


class TestCodec:
    def test_roundtrip(self):
        from repro.sim.parallel.codec import decode_frames, encode_frames

        frames = [
            (0, 0, 0, 0, 0, ("p", 0)),
            (123_456_789, (1 << 96) - 1, 7, 1, 42, ("p", 1)),
            (2**48, ((2**48 - 1) << 48) | (2**48 - 1), 2**31, 0, 2**31, None),
        ]
        assert decode_frames(encode_frames(frames)) == frames

    def test_empty_batch(self):
        from repro.sim.parallel.codec import decode_frames, encode_frames

        assert decode_frames(encode_frames([])) == []


# --- determinism: parallel == serial -----------------------------------------


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return serial_fingerprint()

    def test_inline_two_shards_matches_serial(self, serial):
        fingerprint, result = parallel_fingerprint(2, "inline")
        assert result.executor == "inline"
        assert result.exchanges > 0
        assert result.frames_crossed > 0
        assert fingerprint == serial

    def test_process_two_shards_matches_serial(self, serial):
        fingerprint, result = parallel_fingerprint(2, "process")
        # On fork-less platforms run_parallel degrades to inline -- the
        # protocol (and therefore the fingerprint) is identical.
        assert result.executor in ("process", "inline")
        assert fingerprint == serial

    def test_worker_count_invariance(self, serial):
        fingerprint, _result = parallel_fingerprint(4, "inline")
        assert fingerprint == serial


# --- refusals ----------------------------------------------------------------


class TestRefusals:
    def test_telemetry_forces_serial(self):
        from repro import telemetry
        from repro.sim.parallel import ParallelError, run_parallel

        telemetry.arm(telemetry.TelemetryConfig(label="test-parallel"))
        try:
            with pytest.raises(ParallelError, match="telemetry"):
                run_parallel(small_clos, 2, duration_ns=1000)
        finally:
            telemetry.disarm()
            telemetry.drain()

    def test_lossy_cut_link_refused(self):
        from repro.sim.parallel import ParallelError, run_parallel

        def lossy_build(seed):
            topo = small_clos(seed)
            part = partition_fabric(topo.fabric, 2)
            link = topo.fabric.links[part.cut_links[0]]
            link._loss_rng = SeededRng(seed, "test/loss")
            link.loss_rate = 0.01
            return topo

        with pytest.raises(ParallelError, match="loss"):
            run_parallel(lossy_build, 2, duration_ns=1000)

    def test_unknown_executor_refused(self):
        from repro.sim.parallel import ParallelError, run_parallel

        with pytest.raises(ParallelError, match="executor"):
            run_parallel(small_clos, 2, duration_ns=1000, executor="threads")
