"""Unit tests for ports, links, pause state machine and schedulers."""

import pytest

from repro.net import Device, DwrrScheduler, Link
from repro.net.link import connect
from repro.packets import Ipv4Header, Packet, PfcPauseFrame, TcpHeader
from repro.sim import SeededRng, Simulator
from repro.sim.units import gbps


class Collector(Device):
    """A device that records everything delivered to it."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, port, packet):
        self.received.append((self.sim.now, packet))


def make_packet(payload=1000, src=1, dst=2, dscp=3, sport=1000):
    ip = Ipv4Header(src=src, dst=dst, protocol=6, dscp=dscp)
    tcp = TcpHeader(src_port=sport, dst_port=80)
    return Packet.tcp_segment(dst_mac=dst, src_mac=src, ip=ip, tcp=tcp, payload_bytes=payload)


@pytest.fixture
def pair():
    sim = Simulator()
    a = Collector(sim, "a")
    b = Collector(sim, "b")
    port_a, port_b, link = connect(sim, a, b, rate_bps=gbps(40), delay_ns=100)
    return sim, a, b, port_a, port_b, link


class TestLink:
    def test_delivery_time_is_serialization_plus_propagation(self, pair):
        sim, a, b, port_a, port_b, link = pair
        packet = make_packet(payload=1000)
        # wire = 1000 payload + 20 TCP + 20 IP + 14 eth + 4 FCS + 20 overhead = 1078B
        # at 40 Gb/s -> ceil(8624/40) = 216 ns; +100 ns propagation = 316.
        port_a.enqueue(packet, priority=3)
        sim.run_until_idle()
        assert len(b.received) == 1
        assert b.received[0][0] == 316

    def test_back_to_back_packets_respect_line_rate(self, pair):
        sim, a, b, port_a, port_b, link = pair
        for _ in range(3):
            port_a.enqueue(make_packet(payload=1000), priority=3)
        sim.run_until_idle()
        times = [t for t, _ in b.received]
        assert times == [316, 316 + 216, 316 + 432]

    def test_full_duplex(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.enqueue(make_packet(), priority=0)
        port_b.enqueue(make_packet(), priority=0)
        sim.run_until_idle()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_down_link_blackholes(self, pair):
        sim, a, b, port_a, port_b, link = pair
        link.set_down()
        port_a.enqueue(make_packet(), priority=0)
        sim.run_until_idle()
        assert b.received == []
        assert link.lost == 1
        link.set_up()
        port_a.enqueue(make_packet(), priority=0)
        sim.run_until_idle()
        assert len(b.received) == 1

    def test_random_loss_drops_data_not_pauses(self):
        sim = Simulator()
        a = Collector(sim, "a")
        b = Collector(sim, "b")
        rng = SeededRng(7, "loss")
        port_a, port_b, link = connect(
            sim, a, b, rate_bps=gbps(40), delay_ns=10, loss_rate=1.0, loss_rng=rng
        )
        port_a.enqueue(make_packet(), priority=0)
        pause = Packet.pfc_pause(dst_mac=1, src_mac=2, pause=PfcPauseFrame.pause([3]))
        port_a.enqueue_control(pause)
        sim.run_until_idle()
        kinds = [p.is_pause for _, p in b.received]
        assert kinds == [True]  # the data packet was lost, the pause was not

    def test_loss_rate_requires_rng(self):
        sim = Simulator()
        a = Collector(sim, "a")
        b = Collector(sim, "b")
        with pytest.raises(ValueError):
            connect(sim, a, b, rate_bps=gbps(40), loss_rate=0.1)

    def test_port_cannot_be_double_connected(self, pair):
        sim, a, b, port_a, port_b, link = pair
        c = Collector(sim, "c")
        with pytest.raises(RuntimeError):
            Link(sim, port_a, c.add_port(), rate_bps=gbps(40))


class TestPauseStateMachine:
    def test_pause_blocks_priority(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([3], quanta=0xFFFF))
        port_a.enqueue(make_packet(), priority=3)
        sim.run(until=10_000)
        assert b.received == []
        assert port_a.is_paused(3)

    def test_pause_is_per_priority(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([3]))
        port_a.enqueue(make_packet(dscp=3), priority=3)
        port_a.enqueue(make_packet(dscp=0), priority=0)
        sim.run(until=10_000)
        assert len(b.received) == 1  # only the priority-0 packet got through

    def test_pause_expires_after_quanta(self, pair):
        sim, a, b, port_a, port_b, link = pair
        # 100 quanta at 40 Gb/s = 100 * 512 / 40 = 1280 ns.
        port_a.receive_pause(PfcPauseFrame.pause([3], quanta=100))
        port_a.enqueue(make_packet(), priority=3)
        sim.run_until_idle()
        assert len(b.received) == 1
        arrival = b.received[0][0]
        assert arrival == 1280 + 216 + 100

    def test_zero_quanta_resumes_immediately(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([3]))
        port_a.enqueue(make_packet(), priority=3)
        sim.schedule(500, port_a.receive_pause, PfcPauseFrame.resume([3]))
        sim.run_until_idle()
        assert len(b.received) == 1
        assert b.received[0][0] == 500 + 216 + 100

    def test_repeated_pause_refreshes_deadline(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([3], quanta=100))  # 1280 ns
        sim.schedule(1000, port_a.receive_pause, PfcPauseFrame.pause([3], quanta=100))
        port_a.enqueue(make_packet(), priority=3)
        sim.run_until_idle()
        assert b.received[0][0] == 1000 + 1280 + 216 + 100

    def test_in_flight_packet_completes_despite_pause(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.enqueue(make_packet(), priority=3)

        def pause_mid_flight():
            port_a.receive_pause(PfcPauseFrame.pause([3]))

        sim.schedule(50, pause_mid_flight)  # serialization takes 216 ns
        sim.run(until=5_000)
        assert len(b.received) == 1  # 802.1Qbb cannot preempt a frame

    def test_control_frames_bypass_pause(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause(list(range(8))))
        pause = Packet.pfc_pause(dst_mac=1, src_mac=2, pause=PfcPauseFrame.pause([0]))
        port_a.enqueue_control(pause)
        sim.run(until=5_000)
        assert len(b.received) == 1
        assert b.received[0][1].is_pause

    def test_force_resume_all(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([3, 4]))
        port_a.enqueue(make_packet(), priority=3)
        sim.schedule(300, port_a.force_resume_all)
        sim.run_until_idle()
        assert len(b.received) == 1
        assert not port_a.any_paused

    def test_pause_interval_accounting(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([3], quanta=100))  # 1280 ns
        port_a.enqueue(make_packet(), priority=3)
        sim.run_until_idle()
        assert port_a.paused_interval_ns() >= 1280

    def test_pause_rx_counters(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([3]))
        port_a.receive_pause(PfcPauseFrame.resume([3]))
        assert port_a.stats.pause_rx == 1
        assert port_a.stats.resume_rx == 1


class TestSchedulers:
    def test_strict_priority_serves_high_first(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.receive_pause(PfcPauseFrame.pause([0, 3], quanta=100))
        low = make_packet(dscp=0)
        high = make_packet(dscp=3)
        port_a.enqueue(low, priority=0)
        port_a.enqueue(high, priority=3)
        sim.run_until_idle()
        first = b.received[0][1]
        assert first.ip.dscp == 3

    def test_dwrr_shares_bandwidth_by_weight(self, pair):
        sim, a, b, port_a, port_b, link = pair
        port_a.scheduler = DwrrScheduler(weights={3: 3, 0: 1})
        for _ in range(40):
            port_a.enqueue(make_packet(dscp=3, payload=1000), priority=3)
            port_a.enqueue(make_packet(dscp=0, payload=1000), priority=0)
        sim.run_until_idle()
        first_20 = [p.ip.dscp for _, p in b.received[:20]]
        # Weight 3:1 -> roughly three priority-3 packets per priority-0.
        assert first_20.count(3) >= 12

    def test_head_of_line_drop_for_flood_copies(self):
        sim = Simulator()
        a = Collector(sim, "a")
        b = Collector(sim, "b")
        port_a = a.add_port(drop_flood_at_head=True)
        port_b = b.add_port()
        Link(sim, port_a, port_b, rate_bps=gbps(40), delay_ns=10)

        class Meta:
            flood_copy = True

        dropped = []
        port_a.on_dequeue = lambda pkt, meta, dropped_at_head: dropped.append(dropped_at_head)
        port_a.enqueue(make_packet(), priority=0, meta=Meta())
        port_a.enqueue(make_packet(), priority=0)  # normal packet
        sim.run_until_idle()
        assert dropped == [True, False]
        assert len(b.received) == 1
        assert port_a.stats.head_drops == 1
