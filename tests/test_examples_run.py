"""Smoke tests: the example scripts run to completion.

Examples are a deliverable; these guard them against API drift.  Only
the quick ones run here (the storm/fabric-ops demos take ~a minute and
are exercised by their underlying experiment tests anyway).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, timeout=240):
    path = os.path.join(EXAMPLES_DIR, name)
    return subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "packets dropped  : 0" in result.stdout

    def test_livelock_demo(self):
        result = run_example("livelock_demo.py")
        assert result.returncode == 0, result.stderr
        assert "go-back-0" in result.stdout
        assert "0.00 Gb/s" in result.stdout  # the livelock row

    def test_verbs_api_tour(self):
        result = run_example("verbs_api_tour.py")
        assert result.returncode == 0, result.stderr
        assert "RNR NAKs on the wire" in result.stdout
        assert "WorkCompletion" in result.stdout

    def test_clos_scale_study(self):
        result = run_example("clos_scale_study.py")
        assert result.returncode == 0, result.stderr
        assert "utilization" in result.stdout
        assert "QPs/server" in result.stdout
