"""Tests for the staged rollout procedure (paper section 6.1)."""

import pytest

from repro.core.deployment import StagedRollout
from repro.sim import SeededRng
from repro.topo import three_tier_clos


def make_rollout(seed=71):
    topo = three_tier_clos(
        n_podsets=2,
        tors_per_podset=2,
        hosts_per_tor=2,
        leaves_per_podset=2,
        n_spines=2,
        seed=seed,
    ).boot()
    return StagedRollout(topo, SeededRng(seed, "rollout"))


class TestStagedRollout:
    def test_full_healthy_rollout(self):
        rollout = make_rollout()
        reports = rollout.run_to_completion()
        assert [r.stage for r in reports] == ["tor-only", "podset", "spine"]
        assert all(r.passed for r in reports)
        assert rollout.stage == "spine"
        # Full scope: every switch carries lossless traffic.
        assert all(s.pfc_config.enabled for s in rollout.topo.fabric.switches)

    def test_tor_only_scope(self):
        rollout = make_rollout()
        report = rollout.advance()
        assert report.passed
        assert rollout.stage == "tor-only"
        tors = [t for p in rollout.topo.podsets for t in p["tors"]]
        leaves = [l for p in rollout.topo.podsets for l in p["leaves"]]
        assert all(t.pfc_config.enabled for t in tors)
        assert not any(l.pfc_config.enabled for l in leaves)
        assert not any(s.pfc_config.enabled for s in rollout.topo.spines)

    def test_allowed_pairs_widen_with_stage(self):
        rollout = make_rollout()
        tor_pairs = rollout.allowed_pairs("tor-only")
        podset_pairs = rollout.allowed_pairs("podset")
        spine_pairs = rollout.allowed_pairs("spine")
        assert len(tor_pairs) < len(podset_pairs) < len(spine_pairs)
        # ToR-only pairs stay under one ToR (same /24).
        assert all((a.ip >> 8) == (b.ip >> 8) for a, b in tor_pairs)
        # Spine stage allows cross-podset pairs.
        assert any((a.ip >> 16) != (b.ip >> 16) for a, b in spine_pairs)

    def test_failed_gate_rolls_back(self):
        rollout = make_rollout()
        assert rollout.advance().passed  # tor-only
        # Sabotage the next gate: kill a host the podset probes will hit
        # (the first sampled pair's destination).
        victim = rollout.allowed_pairs("podset")[0][1]
        victim.die()
        report = rollout.advance()
        assert not report.passed
        assert report.probe_errors > 0
        # Scope rolled back: leaves are lossless-disabled again.
        assert rollout.stage == "tor-only"
        leaves = [l for p in rollout.topo.podsets for l in p["leaves"]]
        assert not any(l.pfc_config.enabled for l in leaves)

    def test_cannot_advance_past_full_scope(self):
        rollout = make_rollout()
        rollout.run_to_completion()
        with pytest.raises(RuntimeError):
            rollout.advance()

    def test_reports_accumulate(self):
        rollout = make_rollout()
        rollout.run_to_completion()
        assert len(rollout.reports) == 3
        assert all(r.probes > 0 for r in rollout.reports)
