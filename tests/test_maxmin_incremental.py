"""The incremental MaxMinSolver against the from-scratch reference.

`repro.flows.maxmin.MaxMinSolver` is the engine behind the flow-level
simulator: per-link membership maintained across add/remove, integer
weights collapsing same-path flows, a lazy share heap with early exit.
Every solve must land on the same max-min fixpoint as
`max_min_allocation`, the simple reference scan -- including after
arbitrary churn and weight changes, which is exactly the life the
flowsim engine subjects it to.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.maxmin import MaxMinSolver, max_min_allocation
from tests.strategies import maxmin_problems

#: The solver freezes links in heap order, the reference in scan order;
#: only last-bit float rounding may differ between the two.
REL_TOL = 1e-9


def assert_rates_match(solver_rates, reference_rates, flow_ids):
    assert len(solver_rates) == len(reference_rates) == len(flow_ids)
    for flow_id, expected in zip(flow_ids, reference_rates):
        got = solver_rates[flow_id]
        assert got == pytest.approx(expected, rel=REL_TOL, abs=1e-12), (
            "flow %r: solver %r vs reference %r" % (flow_id, got, expected)
        )


class TestUnit:
    def test_single_link_equal_split(self):
        solver = MaxMinSolver({"l": 30.0})
        ids = [solver.add_flow(["l"]) for _ in range(3)]
        rates = solver.solve()
        assert all(rates[i] == pytest.approx(10.0) for i in ids)

    def test_weight_k_equals_k_identical_flows(self):
        links = {"a": 50.0, "b": 30.0}
        heavy = MaxMinSolver(links)
        hid = heavy.add_flow(["a", "b"], weight=3)
        oid = heavy.add_flow(["a"])
        expected = max_min_allocation(
            links, [["a", "b"]] * 3 + [["a"]]
        )
        rates = heavy.solve()
        assert rates[hid] == pytest.approx(expected[0], rel=REL_TOL)
        assert rates[oid] == pytest.approx(expected[3], rel=REL_TOL)

    def test_remove_flow_restores_capacity(self):
        solver = MaxMinSolver({"l": 40.0})
        keep = solver.add_flow(["l"])
        gone = solver.add_flow(["l"])
        assert solver.solve()[keep] == pytest.approx(20.0)
        solver.remove_flow(gone)
        assert solver.solve() == {keep: pytest.approx(40.0)}
        assert len(solver) == 1

    def test_add_link_rerates_in_place(self):
        solver = MaxMinSolver({"l": 10.0})
        fid = solver.add_flow(["l"])
        assert solver.solve()[fid] == pytest.approx(10.0)
        solver.add_link("l", 25.0)
        assert solver.solve()[fid] == pytest.approx(25.0)

    def test_set_weight_changes_split(self):
        solver = MaxMinSolver({"l": 30.0})
        grp = solver.add_flow(["l"])
        other = solver.add_flow(["l"])
        solver.set_weight(grp, 2)
        rates = solver.solve()
        assert rates[grp] == pytest.approx(10.0)
        assert rates[other] == pytest.approx(10.0)
        assert solver.weight(grp) == 2

    def test_empty_path_rate_zero(self):
        solver = MaxMinSolver({"l": 10.0})
        fid = solver.add_flow([])
        assert solver.solve()[fid] == 0.0

    def test_duplicate_links_constrain_once(self):
        solver = MaxMinSolver({"l": 10.0})
        fid = solver.add_flow(["l", "l"])
        assert solver.path(fid) == ("l",)
        assert solver.solve()[fid] == pytest.approx(10.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            MaxMinSolver({"l": 0.0})
        solver = MaxMinSolver({"l": 10.0})
        with pytest.raises(KeyError):
            solver.add_flow(["nope"])
        with pytest.raises(ValueError):
            solver.add_flow(["l"], weight=0)
        fid = solver.add_flow(["l"])
        with pytest.raises(ValueError):
            solver.set_weight(fid, -1)
        with pytest.raises(KeyError):
            solver.set_weight(12345, 1)
        with pytest.raises(ValueError):
            solver.add_link("l", 0.0)


class TestAgainstReference:
    @given(problem=maxmin_problems())
    @settings(max_examples=100, deadline=None)
    def test_solve_matches_reference(self, problem):
        links, paths = problem
        solver = MaxMinSolver(links)
        ids = [solver.add_flow(path) for path in paths]
        assert_rates_match(solver.solve(), max_min_allocation(links, paths), ids)

    @given(
        problem=maxmin_problems(),
        removals=st.lists(st.integers(0, 10**6), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_churn_matches_reference_on_survivors(self, problem, removals):
        links, paths = problem
        solver = MaxMinSolver(links)
        alive = {solver.add_flow(path): path for path in paths}
        for token in removals:
            if not alive:
                break
            victim = sorted(alive)[token % len(alive)]
            solver.remove_flow(victim)
            del alive[victim]
        ids = sorted(alive)
        reference = max_min_allocation(links, [alive[i] for i in ids])
        rates = solver.solve()
        assert set(rates) == set(ids)
        assert_rates_match(rates, reference, ids)

    @given(
        problem=maxmin_problems(max_flows=8),
        weights=st.lists(st.integers(1, 4), min_size=8, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_weighted_entry_equals_duplicated_flows(self, problem, weights):
        links, paths = problem
        weights = weights[: len(paths)] + [1] * max(0, len(paths) - len(weights))
        solver = MaxMinSolver(links)
        ids = [
            solver.add_flow(path, weight=w) for path, w in zip(paths, weights)
        ]
        # Reference: weight-k flow literally expanded into k flows.
        expanded_paths = []
        firsts = []
        for path, w in zip(paths, weights):
            firsts.append(len(expanded_paths))
            expanded_paths.extend([path] * w)
        expanded = max_min_allocation(links, expanded_paths)
        reference = [expanded[first] for first in firsts]
        assert_rates_match(solver.solve(), reference, ids)

    @given(problem=maxmin_problems())
    @settings(max_examples=40, deadline=None)
    def test_resolve_is_stable_across_repeat_solves(self, problem):
        links, paths = problem
        solver = MaxMinSolver(links)
        for path in paths:
            solver.add_flow(path)
        assert solver.solve() == solver.solve()
