"""Unit tests for the NIC: rx pipeline, pause generation, watchdog, tx
scheduling."""

import pytest

from repro.nic.nic import Nic, NicConfig, NicWatchdogConfig
from repro.net import Device, Link
from repro.packets import Ipv4Header, Packet, UdpHeader
from repro.packets.rocev2 import BaseTransportHeader, BthOpcode, ROCEV2_UDP_PORT
from repro.sim import Simulator
from repro.sim.units import KB, MS, US, gbps
from repro.switch.pfc import PfcConfig


class FakeTor(Device):
    """Far end of the NIC's link; records pause frames and data."""

    def __init__(self, sim):
        super().__init__(sim, "tor")
        self.pauses = []
        self.resumes = []
        self.data = []

    def handle_packet(self, port, packet):
        if packet.is_pause:
            if packet.pause.paused_priorities:
                self.pauses.append(self.sim.now)
            else:
                self.resumes.append(self.sim.now)
        else:
            self.data.append(packet)


def make_nic(sim, **config_kwargs):
    # The watchdog poll timer re-arms forever, so tests that want a
    # quiescent simulator disable it unless they test it explicitly.
    config_kwargs.setdefault("watchdog_config", NicWatchdogConfig(enabled=False))
    config = NicConfig(
        pfc_config=PfcConfig(lossless_priorities=(3,)),
        rx_buffer_bytes=64 * KB,
        rx_xoff_bytes=32 * KB,
        rx_xon_bytes=16 * KB,
        **config_kwargs,
    )
    nic = Nic(sim, "nic", mac=0xAA, config=config)
    tor = FakeTor(sim)
    Link(sim, nic.port, tor.add_port(), rate_bps=gbps(40), delay_ns=10)
    return nic, tor


def data_packet(dst_mac=0xAA, payload=1024, psn=0):
    return Packet.rocev2(
        dst_mac=dst_mac,
        src_mac=0xBB,
        ip=Ipv4Header(src=1, dst=2, dscp=3),
        udp=UdpHeader(src_port=50000, dst_port=ROCEV2_UDP_PORT),
        bth=BaseTransportHeader(opcode=BthOpcode.SEND_ONLY, dest_qp=1, psn=psn),
        payload_bytes=payload,
    )


class TestRxPipeline:
    def test_processes_and_delivers(self):
        sim = Simulator()
        nic, tor = make_nic(sim)
        got = []
        nic.rx_handler = got.append
        nic.handle_packet(nic.port, data_packet())
        sim.run(until=sim.now + 2 * MS)
        assert len(got) == 1
        assert nic.stats.rx_processed == 1

    def test_wrong_mac_discarded(self):
        # "the destination MAC does not match" -- flood copies die here.
        sim = Simulator()
        nic, tor = make_nic(sim)
        nic.handle_packet(nic.port, data_packet(dst_mac=0xCC))
        sim.run(until=sim.now + 2 * MS)
        assert nic.stats.rx_dropped_mac == 1
        assert nic.stats.rx_processed == 0

    def test_broadcast_accepted(self):
        sim = Simulator()
        nic, tor = make_nic(sim)
        got = []
        nic.rx_handler = got.append
        nic.handle_packet(nic.port, data_packet(dst_mac=0xFFFFFFFFFFFF))
        sim.run(until=sim.now + 2 * MS)
        assert got

    def test_backlog_crosses_xoff_generates_pause(self):
        sim = Simulator()
        nic, tor = make_nic(sim, rx_base_ns_per_packet=10_000)  # very slow
        for psn in range(40):  # 40 KB > 32 KB XOFF
            nic.handle_packet(nic.port, data_packet(psn=psn))
        sim.run(until=sim.now + 1 * MS)
        assert nic.stats.pause_generated >= 1
        assert tor.pauses

    def test_xon_resumes_after_drain(self):
        sim = Simulator()
        nic, tor = make_nic(sim, rx_base_ns_per_packet=1_000)
        for psn in range(40):
            nic.handle_packet(nic.port, data_packet(psn=psn))
        sim.run(until=sim.now + 1 * MS)
        assert tor.resumes  # drained below XON -> explicit resume
        assert nic.rx_occupancy_bytes == 0

    def test_dead_nic_drops_everything(self):
        sim = Simulator()
        nic, tor = make_nic(sim)
        nic.die()
        nic.handle_packet(nic.port, data_packet())
        sim.run(until=sim.now + 2 * MS)
        assert nic.stats.rx_dropped_dead == 1

    def test_buffer_overrun_counted_when_pauses_disabled(self):
        sim = Simulator()
        nic, tor = make_nic(sim)
        nic.pause_generation_disabled = True
        nic.break_rx_pipeline()
        for psn in range(100):  # 100 KB > 64 KB buffer
            nic.handle_packet(nic.port, data_packet(psn=psn))
        assert nic.stats.rx_dropped_buffer > 0


class TestStormBug:
    def test_broken_pipeline_pauses_continuously(self):
        sim = Simulator()
        nic, tor = make_nic(sim, watchdog_config=NicWatchdogConfig(enabled=False))
        nic.break_rx_pipeline()
        sim.run(until=sim.now + 5 * MS)
        # Refresh keeps the pause alive: multiple pause frames, no resume.
        assert len(tor.pauses) >= 5
        assert not tor.resumes

    def test_watchdog_trips_and_silences_pauses(self):
        sim = Simulator()
        nic, tor = make_nic(
            sim,
            watchdog_config=NicWatchdogConfig(
                stall_threshold_ns=1 * MS, poll_interval_ns=200 * US
            ),
        )
        nic.break_rx_pipeline()
        sim.run(until=sim.now + 3 * MS)
        assert nic.watchdog_trips == 1
        assert nic.pause_generation_disabled
        pauses_at_trip = len(tor.pauses)
        sim.run(until=sim.now + 5 * MS)
        assert len(tor.pauses) == pauses_at_trip  # silence after the trip

    def test_watchdog_does_not_rearm(self):
        # Paper: "the NIC watchdog does not re-enable the lossless mode"
        # because a storming NIC never recovers on its own.
        sim = Simulator()
        nic, tor = make_nic(
            sim,
            watchdog_config=NicWatchdogConfig(
                stall_threshold_ns=1 * MS, poll_interval_ns=200 * US
            ),
        )
        nic.break_rx_pipeline()
        sim.run(until=sim.now + 10 * MS)
        assert nic.pause_generation_disabled

    def test_repair_restores_service(self):
        # "the NIC PFC storm problem typically can be fixed by a server
        # reboot."
        sim = Simulator()
        nic, tor = make_nic(
            sim,
            watchdog_config=NicWatchdogConfig(
                stall_threshold_ns=1 * MS, poll_interval_ns=200 * US
            ),
        )
        nic.break_rx_pipeline()
        sim.run(until=sim.now + 3 * MS)
        assert nic.pause_generation_disabled
        nic.repair()
        assert not nic.pause_generation_disabled
        got = []
        nic.rx_handler = got.append
        nic.handle_packet(nic.port, data_packet())
        sim.run(until=sim.now + 1 * MS)
        assert got

    def test_healthy_nic_never_trips_watchdog(self):
        sim = Simulator()
        nic, tor = make_nic(
            sim,
            watchdog_config=NicWatchdogConfig(
                stall_threshold_ns=1 * MS, poll_interval_ns=200 * US
            ),
        )
        for psn in range(20):
            nic.handle_packet(nic.port, data_packet(psn=psn))
        sim.run(until=sim.now + 10 * MS)
        assert nic.watchdog_trips == 0


class _StubSource:
    """Minimal tx source for scheduler tests."""

    def __init__(self, nic, tag, count, ready_at=0):
        self.nic = nic
        self.tag = tag
        self.remaining = count
        self.ready_at = ready_at
        self.pulled = []

    def next_ready_ns(self):
        if self.remaining <= 0:
            return None
        return self.ready_at

    def pull(self):
        self.remaining -= 1
        packet = data_packet(dst_mac=0xDD, psn=len(self.pulled))
        packet.flow = self.tag
        self.pulled.append(packet)
        return packet, 3


class TestTxScheduler:
    def test_round_robin_between_sources(self):
        sim = Simulator()
        nic, tor = make_nic(sim)
        a = _StubSource(nic, "a", 20)
        b = _StubSource(nic, "b", 20)
        nic.register_source(a)
        nic.register_source(b)
        sim.run(until=sim.now + 2 * MS)
        flows = [p.flow for p in tor.data[:10]]
        # Interleaved service, not a 20-packet run of one source.
        assert "a" in flows and "b" in flows

    def test_future_ready_time_respected(self):
        sim = Simulator()
        nic, tor = make_nic(sim)
        late = _StubSource(nic, "late", 1, ready_at=1 * MS)
        nic.register_source(late)
        sim.run(until=sim.now + 2 * MS)
        assert len(tor.data) == 1
        # Packet cannot have left before its pacing gate opened.
        assert late.pulled[0].uid is not None
        assert tor.data[0].flow == "late"

    def test_ip_ids_sequential(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        ids = [nic.next_ip_id() for _ in range(300)]
        assert ids[:3] == [0, 1, 2]
        assert ids == [i & 0xFFFF for i in range(300)]

    def test_ip_id_wraps_at_16_bits(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        nic._ip_id = 0xFFFF
        assert nic.next_ip_id() == 0xFFFF
        assert nic.next_ip_id() == 0
