"""Suite-wide test configuration.

Registers two Hypothesis profiles:

* ``default`` -- Hypothesis defaults, used for local development (keeps
  example databases, allows randomized exploration).
* ``ci`` -- derandomized and database-free, selected automatically when
  the ``CI`` environment variable is set (or explicitly via
  ``HYPOTHESIS_PROFILE=ci``).  CI runs must be reproducible: a property
  failure on a pull request has to fail the same way on re-run and on
  the next push, never flake away behind a fresh random seed.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("default", settings())
settings.register_profile(
    "ci",
    derandomize=True,
    database=None,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)

settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "default")
)
