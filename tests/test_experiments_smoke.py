"""Smoke tests: every experiment runner produces its paper-shaped rows.

Durations are cut to the minimum that still shows each phenomenon, so
this file doubles as a fast end-to-end regression of the reproduction
(the benchmarks run the full-length versions).
"""

import pytest

from repro.experiments import (
    run_buffer_misconfig,
    run_clos_throughput,
    run_congestion_latency,
    run_cpu_overhead,
    run_deadlock,
    run_dscp_vs_vlan,
    run_headroom,
    run_livelock,
    run_slow_receiver,
)
from repro.sim.units import MS


class TestLivelockSmoke:
    def test_send_only_short_run(self):
        result = run_livelock(duration_ns=4 * MS, operations=("send",))
        rows = {r["recovery"]: r for r in result.rows()}
        assert rows["go-back-0"]["goodput_gbps"] == 0.0
        assert rows["go-back-n"]["goodput_gbps"] > 10

    def test_format_table_renders(self):
        result = run_livelock(duration_ns=2 * MS, operations=("send",))
        table = result.format_table()
        assert "go-back-0" in table
        assert "goodput_gbps" in table


class TestDeadlockSmoke:
    def test_flooding_deadlocks_and_fix_prevents(self):
        result = run_deadlock(duration_ns=6 * MS)
        rows = {r["scenario"]: r for r in result.rows()}
        assert rows["flooding"]["deadlocked"]
        assert not rows["arp-drop-fix"]["deadlocked"]
        assert rows["arp-drop-fix"]["incomplete_arp_drops"] > 0


class TestClosSmoke:
    def test_flow_level_only(self):
        result = run_clos_throughput(seeds=(1,), packet_level_check=False)
        row = result.rows()[0]
        assert 0.5 < row["utilization"] < 0.75
        assert row["maxmin_utilization"] >= row["utilization"]


class TestSlowReceiverSmoke:
    def test_page_size_contrast(self):
        result = run_slow_receiver(duration_ns=4 * MS)
        rows = {(r["page_size"], r["switch_buffer"]): r for r in result.rows()}
        assert rows[("4KB", "static")]["nic_pauses_per_ms"] > 0
        assert rows[("2MB", "static")]["nic_pauses_per_ms"] == 0


class TestBufferMisconfigSmoke:
    def test_alpha_contrast(self):
        result = run_buffer_misconfig(duration_ns=10 * MS)
        rows = {r["alpha"]: r for r in result.rows()}
        assert rows["1/64"]["tor_pauses_sent"] > rows["1/16"]["tor_pauses_sent"]
        assert len(result.config_drifts) == 1


class TestDscpVsVlanSmoke:
    def test_both_failure_modes(self):
        result = run_dscp_vs_vlan()
        rows = {r["design"]: r for r in result.rows()}
        assert rows["vlan-pfc"]["pxe_boot"] == "broken-trunk-port"
        assert rows["dscp-pfc"]["pxe_boot"] == "success"
        assert rows["vlan-pfc"]["cross_subnet_rdma_drops"] > 0
        assert rows["dscp-pfc"]["cross_subnet_rdma_drops"] == 0


class TestAnalyticExperiments:
    def test_cpu_overhead_rows(self):
        result = run_cpu_overhead(rates_gbps=(40,))
        row = result.rows()[0]
        assert row["tcp_send_cpu_pct"] == pytest.approx(6.0, rel=0.05)
        assert row["rdma_cpu_pct"] == 0.0

    def test_headroom_two_classes(self):
        result = run_headroom(rates_gbps=(40,))
        fabric = next(r for r in result.rows() if r["switch"] == "fabric-wide")
        assert fabric["lossless_classes"] == 2


class TestCongestionLatencySmoke:
    def test_loaded_phase_inflates_tail(self):
        result = run_congestion_latency(phase_ns=15 * MS)
        by_phase = {r["phase"]: r for r in result.rows()}
        assert by_phase["loaded"]["rdma_p99_us"] > by_phase["idle"]["rdma_p99_us"]
        assert by_phase["loaded"]["drops"] == 0
