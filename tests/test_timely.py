"""Tests for the TIMELY extension (RTT-gradient congestion control)."""

import pytest

from repro.rdma import connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US, gbps
from repro.switch.buffer import BufferConfig
from repro.timely import TimelyConfig, TimelyRp, enable_timely
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel


class TestControlLaw:
    def make(self, **kwargs):
        return TimelyRp(line_rate_bps=gbps(40), config=TimelyConfig(**kwargs))

    def test_starts_at_line_rate(self):
        rp = self.make()
        assert rp.rate_bps == gbps(40)

    def test_low_rtt_stays_at_line_rate(self):
        rp = self.make(t_low_ns=20 * US)
        for _ in range(50):
            rp.on_rtt_sample(5 * US)
        assert rp.rate_bps == gbps(40)

    def test_high_rtt_cuts_multiplicatively(self):
        rp = self.make(t_high_ns=100 * US)
        rp.on_rtt_sample(50 * US)  # prime prev_rtt
        rp.on_rtt_sample(500 * US)
        assert rp.rate_bps < gbps(40)
        assert rp.decreases >= 1

    def test_rising_gradient_in_band_decreases(self):
        rp = self.make(t_low_ns=10 * US, t_high_ns=1000 * US, min_rtt_ns=10 * US)
        rate_before = None
        for rtt in (50, 60, 70, 80, 90):
            rp.on_rtt_sample(rtt * US)
            rate_before = rp.rate_bps
        assert rate_before < gbps(40)

    def test_falling_gradient_recovers(self):
        rp = self.make(t_low_ns=10 * US, t_high_ns=1000 * US, min_rtt_ns=10 * US)
        for rtt in (50, 90, 130, 170):
            rp.on_rtt_sample(rtt * US)
        depressed = rp.rate_bps
        for rtt in (160, 150, 140, 130, 120, 110, 100, 90, 80, 70):
            rp.on_rtt_sample(rtt * US)
        assert rp.rate_bps > depressed

    def test_rate_floor_respected(self):
        rp = self.make(min_rate_bps=40 * 10**6)
        rp.on_rtt_sample(50 * US)
        for _ in range(100):
            rp.on_rtt_sample(10_000 * US)
        assert rp.rate_bps >= 40 * 10**6

    def test_hyper_increase_after_sustained_improvement(self):
        config_kwargs = dict(t_low_ns=10 * US, t_high_ns=10_000 * US, min_rtt_ns=10 * US)
        slow = self.make(**config_kwargs)
        slow.rate = 1e9
        for rtt in range(200, 50, -10):  # steadily falling RTT
            slow.on_rtt_sample(rtt * US)
        assert slow.rate > 1e9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TimelyConfig(t_low_ns=100, t_high_ns=100)

    def test_cnp_and_bytes_hooks_are_noops(self):
        rp = self.make()
        rp.on_cnp()
        rp.on_bytes_sent(10**6)
        assert rp.rate_bps == gbps(40)


class TestClosedLoop:
    def test_timely_throttles_incast(self):
        topo = single_switch(
            n_hosts=5,
            seed=13,
            buffer_config=BufferConfig(alpha=None, xoff_static_bytes=96 * KB),
        ).boot()
        rng = SeededRng(13, "timely")
        victim = topo.hosts[0]
        rps = []
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            rps.append(enable_timely(qp))
            ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
        topo.sim.run(until=topo.sim.now + 10 * MS)
        assert all(rp.samples > 10 for rp in rps)
        # Four 40G senders into one 40G port: TIMELY must back off.
        assert any(rp.rate_bps < gbps(20) for rp in rps)

    def test_timely_reduces_pause_generation(self):
        # The RTT band must target a queue *below* the XOFF point (here
        # ~20 us of queueing), and small messages give the controller a
        # dense probe stream -- then TIMELY holds queues short and the
        # switch barely pauses (the paper's section 2 rationale, with
        # TIMELY in DCQCN's role).
        config = TimelyConfig(t_low_ns=8 * US, t_high_ns=25 * US)

        def run(with_timely):
            topo = single_switch(
                n_hosts=5,
                seed=13,
                buffer_config=BufferConfig(alpha=None, xoff_static_bytes=32 * KB),
            ).boot()
            rng = SeededRng(13, "timely-b")
            victim = topo.hosts[0]
            for src in topo.hosts[1:]:
                qp, _ = connect_qp_pair(src, victim, rng)
                if with_timely:
                    enable_timely(qp, config)
                ClosedLoopSender(RdmaChannel(qp), 32 * KB).start()
            topo.sim.run(until=topo.sim.now + 10 * MS)
            return topo.tor.pause_frames_sent()

        with_cc = run(True)
        without_cc = run(False)
        assert with_cc < without_cc / 2

    def test_mutually_exclusive_with_dcqcn(self):
        from repro.dcqcn import enable_dcqcn

        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(1, "excl")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        enable_dcqcn(qp)
        with pytest.raises(RuntimeError):
            enable_timely(qp)
