"""Tests for percentile helpers and the flow-level ECMP model."""

import pytest

from repro.analysis import Cdf, percentile, summarize_latencies_us
from repro.flows import ClosFlowModel, max_min_allocation
from repro.flows.maxmin import link_utilization
from repro.sim.units import GBPS


class TestPercentiles:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        data = list(range(100))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 99

    def test_p99_of_uniform(self):
        data = list(range(1, 1001))
        assert percentile(data, 99) == pytest.approx(990, rel=0.01)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_cdf_quantile_and_fraction(self):
        cdf = Cdf([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert cdf.median == pytest.approx(5.5)
        assert cdf.fraction_below(5) == 0.5
        assert cdf.min == 1
        assert cdf.max == 10
        assert len(cdf) == 10

    def test_cdf_points_monotone(self):
        cdf = Cdf(list(range(1000)))
        points = cdf.points(n=50)
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)

    def test_summary_units(self):
        summary = summarize_latencies_us([1000, 2000, 3000], percentiles=(50,))
        assert summary["p50"] == 2.0


class TestMaxMin:
    def test_single_link_fair_share(self):
        rates = max_min_allocation({"l": 30}, [["l"], ["l"], ["l"]])
        assert rates == [10, 10, 10]

    def test_bottleneck_isolation(self):
        # Flow A on a tight link, flow B gets the remainder elsewhere.
        links = {"tight": 10, "wide": 100}
        rates = max_min_allocation(links, [["tight", "wide"], ["wide"]])
        assert rates[0] == pytest.approx(10)
        assert rates[1] == pytest.approx(90)

    def test_classic_three_flow_example(self):
        # Two unit links in a line; one long flow + two short ones.
        links = {"a": 1.0, "b": 1.0}
        paths = [["a", "b"], ["a"], ["b"]]
        rates = max_min_allocation(links, paths)
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(0.5)
        assert rates[2] == pytest.approx(0.5)

    def test_empty_path_gets_zero(self):
        rates = max_min_allocation({"l": 10}, [[], ["l"]])
        assert rates == [0.0, 10]

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            max_min_allocation({"l": 10}, [["nope"]])

    def test_utilization_accounting(self):
        links = {"a": 10.0}
        paths = [["a"], ["a"]]
        rates = max_min_allocation(links, paths)
        loads = link_utilization(links, paths, rates)
        assert loads["a"] == pytest.approx(1.0)


class TestClosFlowModel:
    def test_paper_shape(self):
        result = ClosFlowModel(seed=1).run()
        # Figure 7: ~3.0 Tb/s, ~60% utilization, ~8 Gb/s per server.
        assert 0.55 <= result.utilization <= 0.70
        assert 2.8e12 <= result.aggregate_bps <= 3.6e12
        assert 7.0 <= result.per_server_gbps() <= 9.5

    def test_qp_count_matches_paper(self):
        result = ClosFlowModel(seed=1).run()
        # 24 ToR pairs x 8 servers x 8 QPs x 2 directions = 3072 (~3074).
        assert len(result.rates_bps) == 3072

    def test_maxmin_bound_exceeds_pfc_uniform(self):
        model = ClosFlowModel(seed=2)
        assert model.run("maxmin").utilization >= model.run("pfc-uniform").utilization

    def test_unknown_allocation_rejected(self):
        with pytest.raises(ValueError):
            ClosFlowModel().run("tcp")

    def test_utilization_stable_across_seeds(self):
        utils = [ClosFlowModel(seed=s).run().utilization for s in range(1, 6)]
        assert max(utils) - min(utils) < 0.1

    def test_leaf_spine_capacity_is_5_12_tbps(self):
        result = ClosFlowModel(seed=1).run()
        assert result.leaf_spine_capacity_bps == 128 * 40 * GBPS

    def test_hot_link_saturated(self):
        result = ClosFlowModel(seed=1).run()
        loads = result.leaf_spine_link_loads()
        assert max(loads.values()) == pytest.approx(1.0, rel=0.05)

    def test_spine_count_must_divide(self):
        with pytest.raises(ValueError):
            ClosFlowModel(n_spines=63)
