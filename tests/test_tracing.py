"""Tests for the causal tracing plane (``repro.tracing``).

Mirrors the structure of tests/test_telemetry.py for its sibling plane:

1. **Dark-path purity** -- with the hub disarmed, pinned scenarios
   reproduce their ``benchmarks/BASELINE.json`` fingerprints
   byte-identically; and because a trace session schedules no events
   and draws no RNG, fingerprints stay identical even while *armed*
   (a stronger guarantee than telemetry's).
2. **Exact-sum attribution** -- every completed op's FCT decomposes
   into the seven components with zero residual on the canonical bench
   scenarios (the ISSUE's acceptance invariant).
3. **Sampling** -- deterministic, seed-keyed, rate-respecting.
4. **Pause causality end to end** -- the §4.3 storm experiment, traced,
   yields a DAG whose DCFIT-style initial trigger is the broken NIC.
5. **CLI + export** -- summarize/attribute/storm/export/pingmesh
   subcommands run over real artifacts; Chrome trace export and
   telemetry-incident windowing behave.
6. **Interop** -- parallel execution refuses an armed trace hub;
   pingmesh probes traced like any op attribute exactly.
"""

import json
import os

import pytest

from repro import tracing
from repro.bench.harness import load_baseline
from repro.bench.scenarios import SCENARIOS
from repro.tracing import __main__ as tracing_cli
from repro.tracing.hooks import HUB
from repro.tracing.session import TraceSession

pytestmark = pytest.mark.tracing

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "BASELINE.json")

MS = 1_000_000


@pytest.fixture(autouse=True)
def _hub_hygiene():
    """No test may leak an armed hub or live session into the suite."""
    yield
    tracing.disarm()
    tracing.drain()
    assert not HUB.enabled and HUB.session is None


def _trace_scenario(name, seed=1, config=None):
    """Run one bench scenario armed; return (run, artifact records)."""
    tracing.arm(config or tracing.TraceConfig(label="test:%s" % name))
    try:
        run = SCENARIOS[name].run(seed=seed)
    finally:
        tracing.disarm()
    artifacts = tracing.drain()
    assert len(artifacts) == 1
    return run, artifacts[0]


# -- 1. dark-path purity -----------------------------------------------------


class TestDarkPath:
    def test_hub_starts_dark(self):
        assert HUB.enabled is False
        assert HUB.session is None
        assert HUB.armed is None

    @pytest.mark.parametrize("name", ("single_flow", "incast_tor"))
    def test_fingerprints_byte_identical_to_baseline(self, name):
        baseline = load_baseline(BASELINE_PATH)
        assert baseline is not None, "benchmarks/BASELINE.json missing"
        run = SCENARIOS[name].run(seed=1)
        recorded = baseline["scenarios"][name]
        assert run.fingerprint == recorded["fingerprint"], (
            "tracing instrumentation perturbed scenario %r with the hub "
            "disabled -- a probe is doing work outside its enabled guard"
            % name
        )
        assert run.events == recorded["events"]
        assert run.packets == recorded["packets"]

    @pytest.mark.parametrize("name", ("single_flow", "pause_storm"))
    def test_armed_fingerprints_still_identical(self, name):
        # Stronger than telemetry: a trace session schedules no events
        # of its own, so even an ARMED run reproduces the baseline.
        baseline = load_baseline(BASELINE_PATH)
        run, _records = _trace_scenario(name)
        assert run.fingerprint == baseline["scenarios"][name]["fingerprint"]

    def test_arm_disarm_without_boot_is_clean(self):
        tracing.arm(tracing.TraceConfig(label="never-attached"))
        assert HUB.armed is not None
        assert HUB.enabled is False  # arming alone must not enable hooks
        tracing.disarm()
        assert HUB.armed is None
        assert tracing.drain() == []

    def test_session_restores_coalescing(self):
        from repro.topo import single_switch

        tracing.arm(tracing.TraceConfig())
        topo = single_switch(n_hosts=2).boot()
        assert topo.sim.coalesce_enabled is False  # sessions need the wire hook
        tracing.disarm()
        assert topo.sim.coalesce_enabled is True
        tracing.drain()


# -- 2. exact-sum attribution ------------------------------------------------


class TestExactSum:
    @pytest.mark.parametrize("name", ("single_flow", "incast_tor", "pause_storm"))
    def test_components_tile_the_fct(self, name):
        _run, records = _trace_scenario(name)
        attributions = tracing.attribute_records(records)
        complete = [a for a in attributions if a["complete"]]
        assert complete, "scenario %r completed no attributable op" % name
        for attribution in complete:
            total = sum(attribution[c] for c in tracing.COMPONENTS)
            assert total == attribution["fct_ns"], (
                "exact-sum violated for %s wr %d: components %d != FCT %d"
                % (attribution["qp"], attribution["wr_id"],
                   total, attribution["fct_ns"])
            )
            assert attribution["residual_ns"] == 0
        # Incomplete ops are only ever mid-flight ones (run stopped).
        for attribution in attributions:
            if not attribution["complete"]:
                assert "never completed" in attribution["reason"]

    def test_pause_component_appears_under_pfc(self):
        _run, records = _trace_scenario("pause_storm")
        attributions = tracing.attribute_records(records)
        agg = tracing.aggregate(attributions)
        assert agg["pause_ns"] > 0, (
            "the pause_storm scenario attributed no FCT time to PFC stalls"
        )
        shares = [agg[c.replace("_ns", "_share")] for c in tracing.COMPONENTS]
        assert abs(sum(shares) - 1.0) < 1e-9

    def test_aggregate_on_empty_is_zeroed(self):
        agg = tracing.aggregate([])
        assert agg["ops"] == 0 and agg["fct_total_ns"] == 0
        assert agg["pause_share"] == 0.0


# -- 3. sampling -------------------------------------------------------------


class _StubSession:
    def __init__(self, rate, seed):
        self.config = tracing.TraceConfig(sample_rate=rate, sample_seed=seed)


class TestSampling:
    def _picks(self, rate, seed, n=2000):
        stub = _StubSession(rate, seed)
        return {
            wr_id
            for wr_id in range(n)
            if TraceSession._sampled(stub, 5, wr_id)
        }

    def test_deterministic_across_calls(self):
        assert self._picks(0.25, 7) == self._picks(0.25, 7)

    def test_seed_changes_the_sample(self):
        assert self._picks(0.25, 7) != self._picks(0.25, 8)

    def test_rate_is_roughly_honoured(self):
        fraction = len(self._picks(0.25, 7)) / 2000
        assert 0.15 < fraction < 0.35

    def test_extremes(self):
        assert len(self._picks(1.0, 0)) == 2000
        assert len(self._picks(0.0, 0)) == 0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            tracing.TraceConfig(sample_rate=1.5)

    def test_sampled_out_ops_are_counted(self):
        _run, records = _trace_scenario(
            "incast_tor",
            config=tracing.TraceConfig(sample_rate=0.25, sample_seed=3),
        )
        summary = tracing.summary_of(records)
        assert summary["ops_sampled_out"] > 0
        assert summary["ops_traced"] + summary["ops_sampled_out"] > 0


# -- 4. pause causality end to end -------------------------------------------


@pytest.fixture(scope="module")
def storm_trace():
    """The §4.3 storm experiment run once with tracing armed.

    Returns the drained record lists -- one per experiment leg."""
    from repro.experiments.storm import run_storm

    tracing.arm(tracing.TraceConfig(label="test-storm"))
    try:
        run_storm(seed=1)
    finally:
        tracing.disarm()
    artifacts = tracing.drain()
    assert artifacts, "storm run attached no trace session"
    return artifacts


def _storm_dag(records):
    return tracing.build_dag(records, tracing.attribute_records(records))


class TestStormCausality:
    def test_artifact_shape(self, storm_trace):
        for records in storm_trace:
            assert records[0]["type"] == "meta"
            assert records[0]["schema"] == "repro-trace/1"
            assert records[-1]["type"] == "summary"
            json.dumps(records)  # artifact must be JSON-serializable

    def test_initial_trigger_is_the_broken_nic(self, storm_trace):
        # The ISSUE's acceptance check: the DAG root names the injected
        # trigger -- P0T0-S0's NIC with its rx pipeline broken.
        triggers = []
        for records in storm_trace:
            dag = _storm_dag(records)
            trigger = dag.initial_trigger()
            if trigger is not None:
                triggers.append(trigger)
        broken = [t for t in triggers if t["trigger"] == "rx_pipeline_broken"]
        assert broken, "no trace leg rooted its DAG at the broken NIC"
        assert {t["device"] for t in broken} == {"P0T0-S0.nic"}
        assert all(t["device_kind"] == "nic" for t in broken)

    def test_storm_tree_propagates_downstream(self, storm_trace):
        best = max(
            (_storm_dag(records) for records in storm_trace),
            key=lambda dag: (
                0
                if dag.initial_trigger() is None
                else dag.descendant_count(dag.initial_trigger()["id"])
            ),
        )
        trigger = best.initial_trigger()
        assert trigger is not None
        assert best.descendant_count(trigger["id"]) >= 1
        # Edges point cause -> effect, so the trigger appears as a cause.
        assert any(cause == trigger["id"] for cause, _ in best.edges)

    def test_render_names_the_trigger(self, storm_trace):
        for records in storm_trace:
            dag = _storm_dag(records)
            if dag.initial_trigger() is None:
                continue
            text = tracing.render_text(dag, max_trees=4)
            assert "initial trigger:" in text
            assert dag.initial_trigger()["device"] in text
            return
        pytest.fail("no leg produced a renderable DAG")

    def test_hub_is_dark_after_drain(self, storm_trace):
        assert HUB.enabled is False
        assert HUB.session is None
        assert HUB.completed == []

    def test_cycle_reported_not_rooted(self):
        def node(node_id, causes):
            return {
                "type": "pause_node", "id": node_id, "device": "S%d" % node_id,
                "port": "S%d.p0" % node_id, "device_kind": "switch",
                "kind": "switch-pg", "trigger": "ingress-xoff", "priority": 3,
                "start_ns": 0, "end_ns": None, "emissions": 1,
                "occupancy_bytes": 0, "threshold_bytes": 0, "causes": causes,
            }

        dag = tracing.build_dag([node(0, [1]), node(1, [0])])
        assert dag.roots == []
        assert dag.cyclic == [0, 1]
        assert dag.initial_trigger() is None
        assert "CYCLE" in tracing.render_text(dag)


# -- 5. CLI + export ---------------------------------------------------------


@pytest.fixture(scope="module")
def storm_artifact_path(storm_trace, tmp_path_factory):
    out = tmp_path_factory.mktemp("trace")
    paths = tracing.write_artifacts(storm_trace, str(out), "storm")
    best = max(
        range(len(storm_trace)),
        key=lambda i: sum(
            1 for r in storm_trace[i] if r.get("type") == "pause_node"
        ),
    )
    return paths[best]


class TestCliAndExport:
    def test_summarize_renders(self, storm_artifact_path, capsys):
        assert tracing_cli.main(["summarize", storm_artifact_path]) == 0
        out = capsys.readouterr().out
        assert "ops" in out and "pauses" in out

    def test_attribute_lists_components(self, storm_artifact_path, capsys):
        assert tracing_cli.main(
            ["attribute", storm_artifact_path, "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        for component in ("source", "queue", "pause", "serialization"):
            assert component in out

    def test_storm_renders_dag(self, storm_artifact_path, capsys):
        assert tracing_cli.main(["storm", storm_artifact_path]) == 0
        out = capsys.readouterr().out
        assert "ROOT" in out or "no pause episodes" in out

    def test_storm_json(self, storm_artifact_path, capsys):
        assert tracing_cli.main(["storm", storm_artifact_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"roots", "cyclic", "nodes", "victims"}

    def test_chrome_export(self, storm_artifact_path, tmp_path, capsys):
        out_path = str(tmp_path / "trace.json")
        assert tracing_cli.main(
            ["export", storm_artifact_path, "--chrome", out_path]
        ) == 0
        with open(out_path) as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        assert any(e["cat"] == "op" for e in events)
        assert any(e["cat"] == "pause" for e in events)

    def test_windows_from_telemetry_and_filter(self):
        telemetry_records = [
            {"type": "meta"},
            {"type": "incident", "kind": "pause_storm", "device": "T0",
             "start_ns": 5 * MS, "end_ns": 7 * MS, "severity": "critical"},
        ]
        windows = tracing.windows_from_telemetry(
            telemetry_records, pad_ns=1 * MS
        )
        assert windows == [{"kind": "pause_storm", "device": "T0",
                            "start_ns": 4 * MS, "end_ns": 8 * MS}]
        records = [
            {"type": "meta"},
            {"type": "op", "posted_ns": 1 * MS, "completed_ns": 2 * MS},
            {"type": "op", "posted_ns": 5 * MS, "completed_ns": 6 * MS},
            {"type": "event", "t_ns": 9 * MS},
            {"type": "summary"},
        ]
        kept = tracing.filter_window(records, 4 * MS, 8 * MS)
        assert [r["type"] for r in kept] == ["meta", "op", "summary"]
        assert kept[1]["posted_ns"] == 5 * MS

    def test_pingmesh_cli(self, tmp_path, capsys):
        path = str(tmp_path / "probes.jsonl")
        with open(path, "w") as handle:
            for rtt in (10_000, 20_000, 30_000):
                handle.write(json.dumps(
                    {"t_ns": rtt, "src": "H0", "dst": "H1",
                     "rtt_ns": rtt, "error": None}) + "\n")
            handle.write(json.dumps(
                {"t_ns": 99, "src": "H0", "dst": "H2",
                 "rtt_ns": None, "error": "timeout"}) + "\n")
        assert tracing_cli.main(["pingmesh", path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["probes"] == 4 and summary["ok"] == 3
        assert summary["errors"] == {"timeout": 1}
        assert summary["rtt_us"]["p50"] == 20.0


# -- 6. interop --------------------------------------------------------------


class TestInterop:
    def test_parallel_refuses_armed_tracing(self):
        from repro.sim.parallel import ParallelError, run_parallel
        from repro.topo import three_tier_clos

        def build(seed):
            return three_tier_clos(
                n_podsets=2, tors_per_podset=2, hosts_per_tor=2,
                leaves_per_podset=2, n_spines=2, seed=seed,
            )

        tracing.arm(tracing.TraceConfig(label="test-parallel"))
        try:
            with pytest.raises(ParallelError, match="tracing"):
                run_parallel(build, 2, duration_ns=1000)
        finally:
            tracing.disarm()
            tracing.drain()

    def test_pingmesh_probes_attribute_exactly(self):
        from repro.monitoring import Pingmesh
        from repro.sim import SeededRng
        from repro.topo import single_switch

        tracing.arm(tracing.TraceConfig(label="test-pingmesh"))
        try:
            topo = single_switch(n_hosts=2).boot()
            pingmesh = Pingmesh(topo.sim, SeededRng(2, "pm"), interval_ns=1 * MS)
            pingmesh.add_pair(topo.hosts[0], topo.hosts[1])
            pingmesh.start()
            topo.sim.run(until=topo.sim.now + 10 * MS)
            pingmesh.stop()
        finally:
            tracing.disarm()
        (records,) = tracing.drain()
        attributions = [
            a for a in tracing.attribute_records(records) if a["complete"]
        ]
        assert len(attributions) >= 5
        rtts = sorted(pingmesh.rtts_ns())
        for attribution in attributions:
            total = sum(attribution[c] for c in tracing.COMPONENTS)
            assert total == attribution["fct_ns"]
            assert attribution["fct_ns"] in rtts
