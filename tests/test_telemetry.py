"""Tests for the unified telemetry subsystem (``repro.telemetry``).

Four layers, mirroring the subsystem's structure:

1. **Registry units** -- counters/gauges/histograms/ring series and the
   declared catalog's internal consistency.
2. **Disabled-by-default purity** -- the telemetry-off bench guard: with
   the hub disarmed, pinned scenarios reproduce their
   ``benchmarks/BASELINE.json`` fingerprints *byte-identically* and fire
   the exact same event counts.  (Events/s is wall-clock dependent and
   asserted by the bench CLI against the baseline, not here -- a timing
   assert in tier-1 would flake on loaded CI workers; identical events +
   identical fingerprint proves identical work.)
3. **Detector semantics** -- synthetic windows driving every detector
   through fire / stay-silent / close transitions, including the
   calibration fact the thresholds encode: healthy congested fabrics
   show heavy *switch* pause rates (no storm) while any sustained *host*
   pause generation is pathological.
4. **End-to-end** -- the §4.3 storm experiment with telemetry armed
   produces pause-storm incidents (and the CLI renders them); the
   healthy ``clos_slice`` scenario stays incident-free; offline replay
   reproduces the online pause-storm verdicts.
"""

import json
import os

import pytest

from repro import telemetry
from repro.bench.harness import collect_telemetry, load_baseline, run_benchmarks
from repro.bench.scenarios import SCENARIOS
from repro.telemetry import __main__ as telemetry_cli
from repro.telemetry.detectors import (
    DetectorThresholds,
    EcnMarkRateDetector,
    PausePropagationDetector,
    PauseStormDetector,
    QueueWatermarkDetector,
    VictimFlowDetector,
)
from repro.telemetry.hooks import HUB
from repro.telemetry.registry import (
    CATALOG,
    CATALOG_BY_NAME,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    RingSeries,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "BASELINE.json")

MS = 1_000_000


@pytest.fixture(autouse=True)
def _hub_hygiene():
    """No test may leak an armed hub or live session into the suite."""
    yield
    telemetry.disarm()
    telemetry.drain()
    assert not HUB.enabled and HUB.session is None


# -- 1. registry units -------------------------------------------------------


class TestRegistryPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        counter.set_absolute(100)
        assert counter.value == 100

    def test_gauge_tracks_peak(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.peak == 10

    def test_histogram_power_of_two_buckets(self):
        histogram = Histogram()
        for value in (0, 1, 2, 3, 4, 1000):
            histogram.observe(value)
        # 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4 -> 3, 1000 -> 10.
        assert histogram.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
        assert histogram.count == 6
        assert histogram.total == 1010
        assert histogram.quantile(1.0) == 1024
        assert histogram.quantile(0.0) == 0

    def test_ring_series_overwrites_oldest(self):
        ring = RingSeries(capacity=3)
        for t in range(5):
            ring.append(t, t * 10)
        assert len(ring) == 3
        assert ring.dropped == 2
        assert ring.items() == [(2, 20), (3, 30), (4, 40)]

    def test_registry_rejects_unknown_metric(self):
        registry = MetricRegistry()
        with pytest.raises(KeyError, match="not in the telemetry catalog"):
            registry.get("made.up_metric", "h0")

    def test_registry_instantiates_per_device(self):
        registry = MetricRegistry()
        a = registry.get("port.pause_tx", "h0")
        b = registry.get("port.pause_tx", "h1")
        assert a is not b
        a.inc()
        assert registry.snapshot_values() == {
            "port.pause_tx|h0": 1,
            "port.pause_tx|h1": 0,
        }


class TestCatalog:
    def test_names_unique_and_indexed(self):
        names = [spec.name for spec in CATALOG]
        assert len(names) == len(set(names))
        assert set(CATALOG_BY_NAME) == set(names)

    def test_kinds_and_metadata_complete(self):
        for spec in CATALOG:
            assert spec.kind in ("counter", "gauge", "histogram"), spec.name
            assert spec.unit, spec.name
            assert spec.source.endswith(".py"), spec.name
            assert spec.help, spec.name

    def test_every_source_module_is_instrumented(self):
        # The catalog's source attributions must point at real modules.
        for spec in CATALOG:
            path = os.path.join(REPO_ROOT, "src", "repro", spec.source)
            assert os.path.exists(path), "%s names missing %s" % (
                spec.name, spec.source)


# -- 2. disabled-by-default purity (the telemetry-off bench guard) -----------


class TestDisabledByDefault:
    def test_hub_starts_dark(self):
        assert HUB.enabled is False
        assert HUB.session is None
        assert HUB.armed is None

    @pytest.mark.parametrize("name", ("single_flow", "incast_tor"))
    def test_fingerprints_byte_identical_to_baseline(self, name):
        baseline = load_baseline(BASELINE_PATH)
        assert baseline is not None, "benchmarks/BASELINE.json missing"
        run = SCENARIOS[name].run(seed=1)
        recorded = baseline["scenarios"][name]
        assert run.fingerprint == recorded["fingerprint"], (
            "telemetry instrumentation perturbed scenario %r with the hub "
            "disabled -- a hook is doing work outside its enabled guard"
            % name
        )
        # Identical event counts: the disabled path must schedule nothing.
        assert run.events == recorded["events"]
        assert run.packets == recorded["packets"]

    def test_arm_disarm_without_boot_is_clean(self):
        telemetry.arm(telemetry.TelemetryConfig(label="never-attached"))
        assert HUB.armed is not None
        assert HUB.enabled is False  # arming alone must not enable hooks
        telemetry.disarm()
        assert HUB.armed is None
        assert telemetry.drain() == []


# -- 3. detector semantics on synthetic windows ------------------------------


def _window(t_ns, devices, interval_ns=MS):
    return {"t_ns": t_ns, "interval_ns": interval_ns, "devices": devices}


def _host(pause_tx=0, paused_ns=0, tx_bytes=10**6, **extra):
    values = {"is_host": True, "pause_tx": pause_tx,
              "paused_ns": paused_ns, "tx_bytes": tx_bytes}
    values.update(extra)
    return values


def _switch(pause_tx=0, ecn_marked=0, shared_in_use=0,
            shared_size=1_000_000, **extra):
    values = {"is_host": False, "pause_tx": pause_tx,
              "ecn_marked": ecn_marked, "shared_in_use": shared_in_use,
              "shared_size": shared_size}
    values.update(extra)
    return values


class TestPauseStormDetector:
    def test_fires_after_min_windows_and_closes(self):
        detector = PauseStormDetector(DetectorThresholds())
        # 2 pauses/ms = 2000/s, the empirical broken-NIC refresh rate.
        detector.observe(_window(1 * MS, {"nic": _host(pause_tx=2)}))
        assert detector.active_devices() == set()  # one window is not a storm
        detector.observe(_window(2 * MS, {"nic": _host(pause_tx=3)}))
        assert detector.active_devices() == {"nic"}
        detector.observe(_window(3 * MS, {"nic": _host(pause_tx=0)}))
        incidents = detector.finish(3 * MS)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.kind == "pause_storm"
        assert incident.severity == "critical"  # host storms are critical
        assert incident.end_ns == 3 * MS
        assert incident.details["peak_rate_fps"] == pytest.approx(3000.0)
        assert incident.details["windows"] == 2

    def test_requires_consecutive_windows(self):
        detector = PauseStormDetector(DetectorThresholds())
        detector.observe(_window(1 * MS, {"nic": _host(pause_tx=2)}))
        detector.observe(_window(2 * MS, {"nic": _host(pause_tx=0)}))
        detector.observe(_window(3 * MS, {"nic": _host(pause_tx=2)}))
        assert detector.finish(3 * MS) == []

    def test_healthy_switch_backpressure_is_not_a_storm(self):
        # clos_slice's leaf switches legitimately sustain up to ~180k
        # pause/s from ordinary congestion; the switch threshold must not
        # turn that into incidents.
        detector = PauseStormDetector(DetectorThresholds())
        for i in range(1, 6):
            detector.observe(_window(i * MS, {"leaf": _switch(pause_tx=180)}))
        assert detector.finish(5 * MS) == []

    def test_still_open_incident_is_closed_by_finish(self):
        detector = PauseStormDetector(DetectorThresholds())
        detector.observe(_window(1 * MS, {"nic": _host(pause_tx=2)}))
        detector.observe(_window(2 * MS, {"nic": _host(pause_tx=2)}))
        incidents = detector.finish(2 * MS)
        assert len(incidents) == 1
        assert incidents[0].end_ns == 2 * MS


class TestPausePropagationDetector:
    CHAIN = {"nic": {"tor"}, "tor": {"nic", "leaf"},
             "leaf": {"tor", "spine"}, "spine": {"leaf"}}

    def _stack(self):
        thresholds = DetectorThresholds()
        storm = PauseStormDetector(thresholds)
        return storm, PausePropagationDetector(thresholds, self.CHAIN, storm)

    def test_depth_from_storm_origin(self):
        storm, propagation = self._stack()
        devices = {
            "nic": _host(pause_tx=2, paused_ns=MS),
            "tor": _switch(pause_tx=10, paused_ns=MS),
            "leaf": _switch(pause_tx=10, paused_ns=MS),
            "spine": _switch(pause_tx=10, paused_ns=MS),
        }
        for i in (1, 2, 3):
            window = _window(i * MS, devices)
            storm.observe(window)
            propagation.observe(window)
        incidents = propagation.finish(3 * MS)
        assert len(incidents) == 1
        assert incidents[0].device == "nic"
        assert incidents[0].details["max_depth"] == 3  # tor -> leaf -> spine

    def test_silent_without_a_storm_origin(self):
        # Pause activity everywhere, but no device over its storm
        # threshold: propagation must not attribute depth to healthy
        # backpressure (the clos_slice false-positive class).
        storm, propagation = self._stack()
        devices = {
            "nic": _host(pause_tx=0, paused_ns=MS // 2),
            "tor": _switch(pause_tx=100, paused_ns=MS),
            "leaf": _switch(pause_tx=100, paused_ns=MS),
            "spine": _switch(pause_tx=100, paused_ns=MS),
        }
        for i in (1, 2, 3):
            window = _window(i * MS, devices)
            storm.observe(window)
            propagation.observe(window)
        assert propagation.finish(3 * MS) == []


class TestVictimFlowDetector:
    def _stack(self):
        thresholds = DetectorThresholds()
        storm = PauseStormDetector(thresholds)
        return storm, VictimFlowDetector(thresholds, storm)

    def test_starved_host_flagged_only_during_storm(self):
        storm, victims = self._stack()
        quiet = {
            "origin": _host(pause_tx=0),
            "bystander": _host(paused_ns=MS, tx_bytes=0),
        }
        window = _window(1 * MS, quiet)
        storm.observe(window)
        victims.observe(window)
        assert victims.finish(1 * MS) == []  # paused but no storm: no victim

        storm, victims = self._stack()
        stormy = {
            "origin": _host(pause_tx=2),
            "bystander": _host(paused_ns=MS, tx_bytes=0),
            "healthy": _host(paused_ns=0, tx_bytes=10**6),
        }
        for i in (1, 2, 3):
            window = _window(i * MS, stormy)
            storm.observe(window)
            victims.observe(window)
        incidents = victims.finish(3 * MS)
        assert [i.device for i in incidents] == ["bystander"]
        assert incidents[0].details["origins"] == ["origin"]
        assert incidents[0].details["paused_fraction"] == pytest.approx(1.0)

    def test_origin_is_never_its_own_victim(self):
        storm, victims = self._stack()
        devices = {"origin": _host(pause_tx=2, paused_ns=MS, tx_bytes=0)}
        for i in (1, 2, 3):
            window = _window(i * MS, devices)
            storm.observe(window)
            victims.observe(window)
        assert victims.finish(3 * MS) == []


class TestEcnAndWatermarkDetectors:
    def test_ecn_rate_fires_after_sustained_windows(self):
        detector = EcnMarkRateDetector(DetectorThresholds())
        detector.observe(_window(1 * MS, {"tor": _switch(ecn_marked=300)}))
        detector.observe(_window(2 * MS, {"tor": _switch(ecn_marked=400)}))
        detector.observe(_window(3 * MS, {"tor": _switch(ecn_marked=0)}))
        incidents = detector.finish(3 * MS)
        assert len(incidents) == 1
        assert incidents[0].kind == "ecn_mark_rate"
        assert incidents[0].details["peak_rate_mps"] == pytest.approx(400000.0)

    def test_ecn_single_window_spike_ignored(self):
        detector = EcnMarkRateDetector(DetectorThresholds())
        detector.observe(_window(1 * MS, {"tor": _switch(ecn_marked=900)}))
        detector.observe(_window(2 * MS, {"tor": _switch(ecn_marked=0)}))
        assert detector.finish(2 * MS) == []

    def test_watermark_crossing(self):
        detector = QueueWatermarkDetector(DetectorThresholds())
        detector.observe(_window(1 * MS, {
            "tor": _switch(shared_in_use=500_000)}))     # 50% -- below
        detector.observe(_window(2 * MS, {
            "tor": _switch(shared_in_use=800_000)}))     # 80% -- above
        detector.observe(_window(3 * MS, {
            "tor": _switch(shared_in_use=100_000)}))     # drained
        incidents = detector.finish(3 * MS)
        assert len(incidents) == 1
        assert incidents[0].kind == "queue_watermark"
        assert incidents[0].details["peak_fraction"] == pytest.approx(0.8)
        assert incidents[0].start_ns == 2 * MS
        assert incidents[0].end_ns == 3 * MS

    def test_watermark_ignores_hosts(self):
        detector = QueueWatermarkDetector(DetectorThresholds())
        detector.observe(_window(1 * MS, {
            "h0": _host(shared_in_use=999_999, shared_size=1_000_000)}))
        assert detector.finish(1 * MS) == []


# -- 4. end-to-end: storm fires, clos_slice silent, replay agrees ------------


@pytest.fixture(scope="module")
def storm_artifacts():
    """The §4.3 storm experiment run once with telemetry armed.

    Returns the drained record lists -- one per scenario leg (watchdogs
    off, watchdogs on), each a full ``repro-telemetry/1`` artifact.
    """
    from repro.experiments.storm import run_storm

    telemetry.arm(telemetry.TelemetryConfig(label="test-storm"))
    try:
        run_storm(seed=1)
    finally:
        telemetry.disarm()
    artifacts = telemetry.drain()
    assert artifacts, "storm run attached no telemetry session"
    return artifacts


def _incidents(records, kind=None):
    return [r for r in records
            if r.get("type") == "incident"
            and (kind is None or r["kind"] == kind)]


class TestStormEndToEnd:
    def test_artifact_shape(self, storm_artifacts):
        for records in storm_artifacts:
            assert records[0]["type"] == "meta"
            assert records[0]["schema"] == "repro-telemetry/1"
            metric_records = [r for r in records if r["type"] == "metric"]
            assert len(metric_records) == len(CATALOG)
            assert any(r["type"] == "sample" for r in records)
            assert records[-1]["type"] == "summary"
            json.dumps(records)  # artifact must be JSON-serializable

    def test_pause_storm_incident_fires_on_victim_nic(self, storm_artifacts):
        storms = [i for records in storm_artifacts
                  for i in _incidents(records, "pause_storm")]
        assert storms, "storm experiment produced no pause_storm incident"
        # The broken NIC is P0T0-S0's; every storm verdict must name it.
        assert {i["device"] for i in storms} == {"P0T0-S0.nic"}
        assert all(i["severity"] == "critical" for i in storms)

    def test_hub_is_dark_after_drain(self, storm_artifacts):
        assert HUB.enabled is False
        assert HUB.session is None
        assert HUB.completed == []

    def test_offline_replay_reproduces_storm_verdicts(self, storm_artifacts):
        for records in storm_artifacts:
            online = {i["device"] for i in _incidents(records, "pause_storm")}
            replayed = telemetry.replay_detectors(records)
            offline = {i.device for i in replayed
                       if i.kind == "pause_storm"}
            assert offline == online

    def test_cli_summarize_renders_incidents(self, storm_artifacts,
                                             tmp_path, capsys):
        path = str(tmp_path / "storm.telemetry.jsonl")
        telemetry.write_jsonl(storm_artifacts[0], path)
        assert telemetry_cli.main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert "pause_storm" in out
        assert "P0T0-S0.nic" in out

    def test_cli_export_csv_and_prometheus(self, storm_artifacts,
                                           tmp_path, capsys):
        path = str(tmp_path / "storm.telemetry.jsonl")
        telemetry.write_jsonl(storm_artifacts[0], path)
        csv_path = str(tmp_path / "storm.csv")
        assert telemetry_cli.main(
            ["export", path, "--format", "csv", "--out", csv_path]) == 0
        with open(csv_path) as fh:
            header = fh.readline().strip()
        assert header == "t_ns,device,metric,value"
        capsys.readouterr()
        assert telemetry_cli.main(["export", path, "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_port_pause_tx counter" in prom
        assert 'repro_incidents_total{kind="pause_storm"}' in prom

    def test_cli_catalog_lists_every_metric(self, capsys):
        assert telemetry_cli.main(["catalog"]) == 0
        out = capsys.readouterr().out
        for spec in CATALOG:
            assert spec.name in out


class TestHealthyFabricStaysSilent:
    def test_clos_slice_produces_no_incidents(self):
        # The discriminator the thresholds were calibrated against: a
        # saturated-but-healthy Clos slice (heavy switch backpressure,
        # zero host pause generation) must not raise anything.
        telemetry.arm(telemetry.TelemetryConfig(label="test-clos-slice"))
        try:
            SCENARIOS["clos_slice"].run(seed=1)
        finally:
            telemetry.disarm()
        artifacts = telemetry.drain()
        assert artifacts
        incidents = [i for records in artifacts for i in _incidents(records)]
        assert incidents == [], (
            "healthy clos_slice raised incidents: %r"
            % [(i["kind"], i["device"]) for i in incidents]
        )


class TestBenchTelemetryPass:
    def test_collect_telemetry_annotates_and_writes(self, tmp_path):
        scenarios = run_benchmarks(["single_flow"], seed=1, repeat=1)
        out_dir = str(tmp_path / "artifacts")
        collect_telemetry(scenarios, out_dir, seed=1)
        block = scenarios["single_flow"]["telemetry"]
        assert block["artifacts"], "instrumented pass wrote no artifact"
        for path in block["artifacts"]:
            records = telemetry.read_jsonl(path)
            assert records[0]["type"] == "meta"
            assert records[0]["label"] == "bench:single_flow"
        assert block["incidents"] == 0  # single healthy flow
        assert HUB.enabled is False and HUB.session is None
