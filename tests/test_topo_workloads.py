"""Tests for topology builders, the fabric container and workload
generators."""

import pytest

from repro.sim import SeededRng, Simulator
from repro.sim.units import KB, MS, gbps
from repro.topo import deadlock_quad, single_switch, three_tier_clos, two_tier
from repro.topo.fabric import Fabric, host_ip, tor_subnet
from repro.workloads import ClosedLoopSender, PeriodicIncast, PoissonRequests


class TestAddressing:
    def test_host_ip_layout(self):
        assert host_ip(0, 0, 0) == (10 << 24) | 1
        assert host_ip(1, 2, 3) == (10 << 24) | (1 << 16) | (2 << 8) | 4

    def test_subnet_covers_hosts(self):
        prefix, plen = tor_subnet(1, 2)
        mask = ((1 << plen) - 1) << (32 - plen)
        for h in range(24):
            assert host_ip(1, 2, h) & mask == prefix

    def test_macs_unique(self):
        topo = three_tier_clos(
            n_podsets=2, tors_per_podset=2, hosts_per_tor=2, leaves_per_podset=2, n_spines=2
        )
        macs = [h.mac for h in topo.hosts]
        assert len(macs) == len(set(macs))

    def test_ips_unique_and_registered(self):
        topo = two_tier(n_tors=2, hosts_per_tor=3, n_leaves=2)
        ips = [h.ip for h in topo.hosts]
        assert len(ips) == len(set(ips))
        assert len(topo.fabric.directory) == len(ips)


class TestBuilders:
    def test_single_switch_shape(self):
        topo = single_switch(n_hosts=4)
        assert len(topo.hosts) == 4
        assert len(topo.tor.ports) == 4
        assert all(p.connected for p in topo.tor.ports)

    def test_two_tier_shape(self):
        topo = two_tier(n_tors=2, hosts_per_tor=3, n_leaves=4)
        assert len(topo.tors) == 2
        assert len(topo.leaves) == 4
        assert len(topo.hosts) == 6
        # Each ToR: 3 server ports + 4 uplinks.
        assert all(len(t.ports) == 7 for t in topo.tors)
        # Each leaf: one port per ToR.
        assert all(len(l.ports) == 2 for l in topo.leaves)

    def test_three_tier_shape(self):
        topo = three_tier_clos(
            n_podsets=2, tors_per_podset=2, hosts_per_tor=2, leaves_per_podset=2, n_spines=4
        )
        assert len(topo.spines) == 4
        assert len(topo.podsets) == 2
        assert len(topo.hosts) == 8
        # Spine s serves leaf s // spines_per_leaf of each podset.
        assert all(len(s.ports) == 2 for s in topo.spines)

    def test_three_tier_spine_divisibility(self):
        with pytest.raises(ValueError):
            three_tier_clos(leaves_per_podset=3, n_spines=4)

    def test_deadlock_quad_shape(self):
        topo = deadlock_quad()
        assert set(topo.hosts) == {"S1", "S2", "S3", "S4", "S5", "S6", "S7"}
        assert len(topo.t0.ports) == 5  # S1, S2, S6 + two uplinks
        assert len(topo.t1.ports) == 6  # S3, S4, S5, S7 + two uplinks

    def test_cross_tor_connectivity_after_boot(self):
        from repro.rdma import connect_qp_pair, post_send

        topo = three_tier_clos(
            n_podsets=2, tors_per_podset=2, hosts_per_tor=1, leaves_per_podset=2, n_spines=2
        ).boot()
        rng = SeededRng(1, "conn")
        src = topo.podsets[0]["hosts_by_tor"][0][0]
        dst = topo.podsets[1]["hosts_by_tor"][1][0]
        qp, _ = connect_qp_pair(src, dst, rng)
        wr = post_send(qp, 64 * KB)
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert wr.completed

    def test_boot_populates_arp(self):
        topo = two_tier(n_tors=2, hosts_per_tor=2, n_leaves=1).boot()
        for t, tor in enumerate(topo.tors):
            for host in topo.hosts_by_tor[t]:
                assert tor.tables.arp_table.lookup(host.ip) == host.mac

    def test_fabric_duplicate_ip_rejected(self):
        fabric = Fabric()
        fabric.add_host("a", ip=1)
        with pytest.raises(ValueError):
            fabric.add_host("b", ip=1)

    def test_fabric_lookup_helpers(self):
        topo = single_switch(n_hosts=2)
        assert topo.fabric.host_named("S0") is topo.hosts[0]
        assert topo.fabric.switch_named("T0") is topo.tor
        with pytest.raises(KeyError):
            topo.fabric.host_named("nope")


class _RecordingChannel:
    def __init__(self, sim, delay_ns=1000):
        self.sim = sim
        self.delay_ns = delay_ns
        self.sent = []

    def send(self, nbytes, on_delivered=None):
        self.sent.append((self.sim.now, nbytes))
        if on_delivered is not None:
            self.sim.schedule(self.delay_ns, on_delivered, self.delay_ns)


class TestWorkloads:
    def test_closed_loop_keeps_pipeline_full(self):
        sim = Simulator()
        channel = _RecordingChannel(sim)
        sender = ClosedLoopSender(channel, 1000, max_messages=10, pipeline_depth=3).start()
        sim.run_until_idle()
        assert sender.completed_messages == 10
        assert len(channel.sent) == 10
        assert sender.goodput_bps(10_000) > 0

    def test_closed_loop_unbounded_runs_forever(self):
        sim = Simulator()
        channel = _RecordingChannel(sim)
        ClosedLoopSender(channel, 1000).start()
        sim.run(until=100_000)
        assert len(channel.sent) > 50

    def test_periodic_incast_fires_all_channels(self):
        sim = Simulator()
        channels = [_RecordingChannel(sim) for _ in range(5)]
        incast = PeriodicIncast(sim, channels, burst_bytes=100, period_ns=10_000, max_rounds=3)
        incast.start()
        sim.run(until=100_000)
        assert incast.rounds_fired == 3
        assert all(len(c.sent) == 3 for c in channels)
        assert incast.deliveries == 15

    def test_periodic_incast_offered_load(self):
        sim = Simulator()
        channels = [_RecordingChannel(sim) for _ in range(4)]
        incast = PeriodicIncast(sim, channels, burst_bytes=1250, period_ns=1_000_000)
        # 4 x 1250 B x 8 / 1 ms = 40 Mb/s.
        assert incast.offered_load_bps() == pytest.approx(40e6)

    def test_periodic_incast_jitter_spreads_sends(self):
        sim = Simulator()
        rng = SeededRng(1, "jit")
        channels = [_RecordingChannel(sim) for _ in range(8)]
        PeriodicIncast(
            sim, channels, burst_bytes=1, period_ns=100_000, rng=rng,
            jitter_ns=50_000, max_rounds=1,
        ).start()
        sim.run(until=200_000)
        first_times = sorted(c.sent[0][0] for c in channels)
        assert first_times[-1] > first_times[0]

    def test_poisson_requests_rate(self):
        sim = Simulator()
        rng = SeededRng(2, "poisson")
        channel = _RecordingChannel(sim)
        gen = PoissonRequests(
            sim, [channel], message_bytes=100, rate_per_second=100_000, rng=rng
        ).start()
        sim.run(until=10_000_000)  # 10 ms at 100k/s -> ~1000 requests
        gen.stop()
        assert 700 < gen.sent < 1300
        assert len(gen.latencies_ns) > 0

    def test_poisson_max_requests(self):
        sim = Simulator()
        rng = SeededRng(3, "poisson")
        channel = _RecordingChannel(sim)
        gen = PoissonRequests(
            sim, [channel], message_bytes=1, rate_per_second=10**6, rng=rng, max_requests=5
        ).start()
        sim.run(until=100_000_000)
        assert gen.sent == 5

    def test_poisson_rejects_bad_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonRequests(sim, [], 1, 0, SeededRng(1, "x"))
