"""The packet-vs-flowsim differential lane (validation/flowsim_lane).

A handful of clean seeds end to end (the 100-seed acceptance sweep is
CI's differential smoke job), the report-row schema, oracle sensitivity
(a tightened band must flag what the real run passes), and artifact
writing on violation.

Run alone with ``pytest -m flowsim``.
"""

import json

import pytest

from repro.validation import FlowsimTolerances, validate_flowsim_seed
from repro.validation.flowsim_lane import (
    _report_row,
    _write_artifact,
    flowsim_rates_for_outcome,
    judge_flowsim_run,
    run_flowsim_differential_sweep,
)
from repro.validation.scenarios import generate_scenario

pytestmark = pytest.mark.flowsim


class TestCleanSeeds:
    @pytest.mark.parametrize("seed", range(4))
    def test_seed_is_clean(self, seed):
        report = validate_flowsim_seed(seed)
        assert report.clean, report.violations
        if not report.skipped:
            assert len(report.flow_rates) == len(report.outcome.flows)

    def test_deadlock_kind_is_skipped(self, monkeypatch):
        # The seed map never draws the deadlock kind (it is the fixed
        # figure 4 probe), but replay paths can hand one in -- the lane
        # must skip it, not trace paths that do not exist.
        from repro.validation import flowsim_lane
        from repro.validation.scenarios import deadlock_probe_scenario

        monkeypatch.setattr(
            flowsim_lane, "generate_scenario",
            lambda seed: deadlock_probe_scenario(),
        )
        report = flowsim_lane.validate_flowsim_seed(0)
        assert report.skipped and report.clean


class TestSweep:
    def test_rows_and_schema(self, tmp_path):
        result = run_flowsim_differential_sweep(
            seeds=3, artifact_dir=str(tmp_path)
        )
        result.check_schema()
        rows = result.rows()
        assert [row["seed"] for row in rows] == [0, 1, 2]
        for row in rows:
            assert row["violations"] == 0
            if not row["skipped"]:
                assert row["max_model_rel_err"] <= FlowsimTolerances.model_rel_err
        assert not list(tmp_path.iterdir())  # clean runs leave no artifacts


class TestOracleSensitivity:
    def test_tightened_band_is_flagged_and_artifacted(self, tmp_path):
        # The real run passes the shipped tolerances; a flow_hi below
        # the measured/flowsim ratio must trip the band oracle -- the
        # lane is actually comparing, not rubber-stamping.
        class Strict(FlowsimTolerances):
            flow_hi = 1e-6
            cap_slack = 1e-6

        seed = next(
            s for s in range(50)
            if generate_scenario(s).kind != "deadlock"
            and not generate_scenario(s).lossy
        )
        report = validate_flowsim_seed(seed, tolerances=Strict)
        assert not report.clean
        assert {v["oracle"] for v in report.violations} == {"flowsim-band"}
        path = _write_artifact(report, str(tmp_path))
        payload = json.loads(open(path).read())
        assert payload["schema"] == "flowsim-differential/1"
        assert payload["violations"]
        assert len(payload["flows"]) == len(report.outcome.flows)

    def test_model_oracle_catches_rate_mismatch(self):
        seed = next(
            s for s in range(50) if generate_scenario(s).kind != "deadlock"
        )
        scenario = generate_scenario(seed)
        from repro.validation.differential import run_scenario

        outcome = run_scenario(scenario)
        rates = flowsim_rates_for_outcome(outcome, scenario.link_gbps)
        tampered = [rate * 1.5 for rate in rates]
        violations = judge_flowsim_run(outcome, tampered)
        assert any(v["oracle"] == "flowsim-model" for v in violations)

    def test_report_row_fields(self):
        report = validate_flowsim_seed(0)
        row = _report_row(report)
        assert set(row) >= {
            "seed", "kind", "flows", "skipped", "violations", "oracles",
            "max_model_rel_err", "min_band_ratio", "max_band_ratio",
        }
