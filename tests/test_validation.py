"""The differential validation subsystem (src/repro/validation/).

The `validation` lane: scenario-generator determinism and round-trips,
a small clean oracle sweep, mutation sensitivity (the go-back-0 probe
must be flagged), shrinking, and artifact replay.  The full 200-seed
acceptance sweep runs in CI's validation job, not here.

Run alone with ``pytest -m validation``.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.validation import (
    MUTATIONS,
    RunOutcome,
    Tolerances,
    ValidationScenario,
    generate_scenario,
    mutation_check,
    replay_artifact,
    run_scenario,
    run_validation_sweep,
    shrink_scenario,
    validate_seed,
)
from repro.validation.harness import load_artifact, validate_scenario, write_artifact
from repro.validation.scenarios import (
    MAX_FLOWS,
    MAX_FLOWS_PER_DST,
    host_count,
    livelock_probe_scenario,
)
from tests.strategies import validation_scenarios

pytestmark = pytest.mark.validation


# --- scenario generation ------------------------------------------------------


class TestScenarioGenerator:
    def test_same_seed_same_scenario(self):
        assert generate_scenario(7) == generate_scenario(7)
        assert generate_scenario(7) != generate_scenario(8)

    def test_dict_round_trip_survives_json(self):
        for seed in range(30):
            scenario = generate_scenario(seed)
            wire = json.loads(json.dumps(scenario.to_dict()))
            assert ValidationScenario.from_dict(wire) == scenario

    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(scenario=validation_scenarios())
    def test_generated_scenarios_are_well_formed(self, scenario):
        n_hosts = host_count(scenario.kind, scenario.dims)
        assert 1 <= len(scenario.flows) <= MAX_FLOWS
        dst_load = {}
        for src, dst, kb in scenario.flows:
            assert 0 <= src < n_hosts
            assert 0 <= dst < n_hosts
            assert src != dst
            assert kb > 0
            dst_load[dst] = dst_load.get(dst, 0) + 1
        assert all(n <= MAX_FLOWS_PER_DST for n in dst_load.values())

    def test_replace_overrides_without_mutating(self):
        scenario = generate_scenario(3)
        doubled = scenario.replace(link_gbps=scenario.link_gbps * 2)
        assert doubled.link_gbps == 2 * scenario.link_gbps
        assert doubled.flows == scenario.flows
        assert generate_scenario(3) == scenario  # original untouched


# --- oracles on live runs -----------------------------------------------------


class TestOracles:
    def test_single_flow_scenario_is_clean_and_near_line_rate(self):
        scenario = ValidationScenario(
            seed=0,
            kind="single",
            dims={"n_hosts": 2},
            link_gbps=40,
            flows=[(0, 1, 128)],
        )
        outcome = run_scenario(scenario)
        assert isinstance(outcome, RunOutcome)
        assert outcome.violations == []
        assert outcome.drained and outcome.queues_empty
        flow = outcome.flows[0]
        # One flow, one link: max-min share == uniform == bottleneck.
        assert flow.share_bps == flow.uniform_bps == flow.bottleneck_bps
        assert flow.measured_bps > 0.9 * flow.share_bps

    def test_seed_sweep_of_a_few_scenarios_is_clean(self, tmp_path):
        result = run_validation_sweep(
            seeds=3, metamorphic=False, artifact_dir=str(tmp_path)
        )
        rows = result.rows()
        assert len(rows) == 3
        assert all(row["violations"] == 0 for row in rows)

    def test_tolerances_can_force_a_violation(self):
        # The bands are live: an absurd lower band must flag a healthy run.
        class Impossible(Tolerances):
            # Nothing sustains >100% of the uniform rate (either floor
            # applies, depending on whether seed 0 drew a lossy run).
            flow_lo = 1.01
            progress_lo = 1.01

        report = validate_seed(0, metamorphic=False, tolerances=Impossible)
        assert any(v["oracle"] == "goodput-low" for v in report.violations)


# --- mutation sensitivity, shrinking, replay ----------------------------------


class TestMutationAndReplay:
    def test_go_back_0_mutation_is_caught_with_replayable_artifact(self, tmp_path):
        results = mutation_check(which="go-back-0", artifact_dir=str(tmp_path))
        info = results["go-back-0"]
        assert info["baseline_clean"], "livelock probe must pass without the bug"
        assert info["caught"], "oracles missed the reverted go-back-0 recovery"
        assert "drain" in info["oracles"] or "goodput-low" in info["oracles"]
        # The artifact replays to the same verdict.
        report = replay_artifact(info["artifact"])
        assert report.violations, "minimized repro did not reproduce"

    def test_shrinker_drops_redundant_flows(self):
        base = livelock_probe_scenario()
        padded = base.replace(
            flows=[list(f) for f in base.flows] + [[1, 0, 64]],
            dims={"n_hosts": 3},
        )

        def still_fails(candidate):
            return bool(
                validate_scenario(
                    candidate, metamorphic=False, mutation="go-back-0"
                ).violations
            )

        minimized = shrink_scenario(padded, still_fails, max_runs=12)
        assert len(minimized.flows) < len(padded.flows)

    def test_artifact_round_trip_prefers_minimized(self, tmp_path):
        scenario = generate_scenario(5)
        minimized = scenario.replace(measure_us=200)
        path = write_artifact(
            str(tmp_path / "repro.jsonl"),
            scenario,
            [{"oracle": "x", "subject": "s", "detail": "d"}],
            minimized=minimized,
            minimized_violations=[],
        )
        records = load_artifact(path)
        assert [r["record"] for r in records] == [
            "scenario",
            "violations",
            "minimized",
        ]
        assert ValidationScenario.from_dict(records[2]["scenario"]) == minimized

    def test_mutation_registry_names_both_paper_bugs(self):
        assert set(MUTATIONS) == {"go-back-0", "no-arp-drop"}
