"""Equivalence suite: timing-wheel scheduler vs the reference heapq engine.

The `Simulator` in `repro.sim.engine` replaced a single heapq with a
hierarchical timing wheel (near-future buckets + overflow heap + a
current-tick side heap).  The contract is that this is *invisible*: for
any interleaving of schedule / at / cancel / run(until) / step calls --
including callbacks that schedule into the tick currently being drained,
delays that straddle the wheel window, and compaction boundaries -- the
two implementations fire identical (time, seq) sequences and agree on
``now``, ``events_fired`` and ``pending``.

`ReferenceSimulator` below is a minimal transliteration of the seed
heapq engine (lazy cancellation, FIFO tie-break by sequence number,
inclusive ``run(until=...)`` horizon, clock advanced to the horizon when
idle).
"""

import heapq

import pytest
from hypothesis import given, settings

from repro.sim import Simulator
from repro.sim.engine import _WHEEL_BITS, SimulationError
from tests.strategies import WINDOW_NS as _WINDOW_NS
from tests.strategies import apply_sim_program as _apply_program
from tests.strategies import sim_programs


class _RefEvent:
    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = None


class ReferenceSimulator:
    """The seed engine: one heapq of (time, seq, event), lazy cancel."""

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._queue = []
        self._fired = 0

    @property
    def now(self):
        return self._now

    @property
    def events_fired(self):
        return self._fired

    @property
    def pending(self):
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    def at(self, time, fn, *args):
        time = int(time)
        if time < self._now:
            raise SimulationError("past")
        event = _RefEvent(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise SimulationError("negative")
        return self.at(self._now + int(delay), fn, *args)

    def step(self):
        while self._queue:
            _time, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            fn, args = event.fn, event.args
            event.fn = None
            event.args = None
            self._fired += 1
            fn(*args)
            return True
        return False

    def run(self, until=None, max_events=None):
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            time, _seq, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = time
            fn, args = event.fn, event.args
            event.fn = None
            event.args = None
            self._fired += 1
            fn(*args)
            fired += 1
        if until is not None and self._now < until:
            self._now = until
        return fired

    def run_until_idle(self, max_events=None):
        return self.run(until=None, max_events=max_events)


class _EagerCompactionSimulator(Simulator):
    """Wheel simulator that compacts after only a few cancels, so short
    generated programs cross compaction boundaries many times."""

    _COMPACT_MIN_CANCELLED = 4


# Programs (lists of scheduler ops) and the trace applier are shared
# with the rest of the suite via tests.strategies: sim_programs /
# apply_sim_program.


@settings(max_examples=200, deadline=None)
@given(ops=sim_programs())
def test_wheel_matches_heapq_reference(ops):
    wheel = Simulator()
    ref = ReferenceSimulator()
    wheel_trace = _apply_program(wheel, ops)
    ref_trace = _apply_program(ref, ops)
    assert wheel_trace == ref_trace
    assert wheel.now == ref.now
    assert wheel.events_fired == ref.events_fired
    assert wheel.pending == ref.pending == 0


@settings(max_examples=100, deadline=None)
@given(ops=sim_programs())
def test_wheel_matches_reference_across_compaction_boundaries(ops):
    # Same program, but the wheel compacts after 4 cancels instead of 64,
    # so cancel-heavy interleavings hit compaction mid-flight.  Compaction
    # must be invisible to ordering.
    wheel = _EagerCompactionSimulator()
    ref = ReferenceSimulator()
    assert _apply_program(wheel, ops) == _apply_program(ref, ops)
    assert (wheel.now, wheel.events_fired) == (ref.now, ref.events_fired)


def test_pooled_fast_paths_keep_fifo_order():
    # schedule1/schedule0 (free-listed events) must interleave with the
    # public tuple path in strict FIFO order at equal times.
    sim = Simulator()
    order = []
    sim.schedule(10, order.append, "tuple-0")
    sim.schedule1(10, order.append, "single-1")
    sim.schedule0(10, lambda: order.append("noarg-2"))
    sim.schedule(10, order.append, "tuple-3")
    sim.schedule1(5, order.append, "single-early")
    sim.run_until_idle()
    assert order == ["single-early", "tuple-0", "single-1", "noarg-2", "tuple-3"]


def test_pooled_events_are_recycled():
    sim = Simulator()
    hits = []
    first = sim.schedule1(1, hits.append, "a")
    sim.run_until_idle()
    second = sim.schedule1(1, hits.append, "b")
    assert second is first  # drawn from the free-list
    sim.run_until_idle()
    assert hits == ["a", "b"]


def test_pooled_event_cancel_before_fire():
    sim = Simulator()
    hits = []
    event = sim.schedule1(50, hits.append, "never")
    sim.schedule(10, event.cancel)
    sim.run_until_idle()
    assert hits == []
    assert sim.pending == 0


def test_far_future_event_fires_after_window_migration():
    sim = Simulator()
    hits = []
    # > one window out: parked in the overflow heap, must migrate into
    # the wheel and fire at the exact requested time.
    sim.schedule(5 * _WINDOW_NS + 37, hits.append, None)
    sim.run_until_idle()
    assert hits == [None]
    assert sim.now == 5 * _WINDOW_NS + 37


def test_horizon_break_then_near_past_schedule():
    # Regression guard: breaking at a run(until=...) horizon must not
    # advance the tick cursor past events scheduled later at times before
    # the first queued event (they'd land "behind" the cursor and vanish).
    sim = Simulator()
    hits = []
    sim.schedule(100 * (1 << _WHEEL_BITS), hits.append, "far")
    sim.run(until=10)
    sim.schedule(5, hits.append, "near")
    sim.run_until_idle()
    assert hits == ["near", "far"]


def test_past_schedule_still_rejected():
    sim = Simulator()
    sim.schedule(50, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.at(10, lambda: None)
