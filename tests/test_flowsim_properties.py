"""Property-based cross-checks of the flow-level simulator.

The load-bearing property: in exact mode, after any event batch, the
engine's steady-state rates ARE the max-min fair allocation of the
active flow set -- checked here against the from-scratch reference
allocator over randomized link/path instances and randomized fabrics.
Plus determinism (identical seeded builds give identical integer
fingerprints) and conservation (no link ever carries more than its
capacity).

Run alone with ``pytest -m flowsim``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.maxmin import max_min_allocation
from repro.flowsim import EFFICIENCY, FlowSim, two_tier_flow
from repro.sim.rng import SeededRng
from repro.sim.units import MS, gbps

from tests.strategies import maxmin_problems, two_tier_dims

pytestmark = pytest.mark.flowsim

_PERMANENT = 10 ** 15


def scale_problem(problem):
    """maxmin_problems capacities are O(100) unitless; lift them to
    plausible bps so the engine's bytes/ns arithmetic stays in its
    realistic range."""
    links, paths = problem
    return {link: cap * 1e9 for link, cap in links.items()}, paths


@given(problem=maxmin_problems())
@settings(max_examples=60, deadline=None)
def test_exact_mode_steady_state_is_maxmin(problem):
    links, paths = scale_problem(problem)
    sim = FlowSim(links, rate_update_interval_ns=0)
    ids = [
        sim.add_flow(path, _PERMANENT) if path else None for path in paths
    ]
    routed = [(fid, path) for fid, path in zip(ids, paths) if path]
    if not routed:
        return
    sim.run(until_ns=1)
    reference = max_min_allocation(links, [path for _fid, path in routed])
    rates = sim.current_rates()
    for (fid, _path), expected in zip(routed, reference):
        assert rates[fid] == pytest.approx(expected, rel=1e-9, abs=1e-12)


@given(problem=maxmin_problems())
@settings(max_examples=40, deadline=None)
def test_no_link_oversubscribed(problem):
    links, paths = scale_problem(problem)
    sim = FlowSim(links, rate_update_interval_ns=0)
    for path in paths:
        if path:
            sim.add_flow(path, _PERMANENT)
    sim.run(until_ns=1)
    for utilization in sim.link_utilization().values():
        assert utilization <= 1.0 + 1e-9


@given(
    dims=two_tier_dims(max_tors=3, max_hosts_per_tor=3, max_leaves=2),
    seed=st.integers(0, 1000),
    n_flows=st.integers(1, 40),
)
@settings(max_examples=25, deadline=None)
def test_fabric_steady_state_is_maxmin(dims, seed, n_flows):
    topology = two_tier_flow(**dims)
    if topology.n_hosts < 2:
        return
    caps = topology.goodput_capacities()
    sim = FlowSim(caps, rate_update_interval_ns=0, topology=topology)
    rng = SeededRng(seed, "prop/flowsim")
    specs = []
    for _ in range(n_flows):
        src = rng.randint(0, topology.n_hosts - 1)
        dst = (src + rng.randint(1, topology.n_hosts - 1)) % topology.n_hosts
        sport = rng.randint(49152, 65535)
        fid = sim.add_host_flow(src, dst, _PERMANENT, sport=sport)
        specs.append((fid, topology.path(src, dst, sport)))
    sim.run(until_ns=1)
    reference = max_min_allocation(caps, [path for _fid, path in specs])
    rates = sim.current_rates()
    for (fid, _path), expected in zip(specs, reference):
        assert rates[fid] == pytest.approx(expected, rel=1e-9)


@given(
    dims=two_tier_dims(max_tors=2, max_hosts_per_tor=3, max_leaves=2),
    seed=st.integers(0, 1000),
    interval_us=st.sampled_from([0, 50, 500]),
)
@settings(max_examples=20, deadline=None)
def test_seeded_runs_fingerprint_identically(dims, seed, interval_us):
    def build_and_run():
        topology = two_tier_flow(**dims)
        sim = FlowSim.from_topology(
            topology, rate_update_interval_ns=interval_us * 1000
        )
        rng = SeededRng(seed, "prop/det")
        n_hosts = topology.n_hosts
        if n_hosts < 2:
            return None
        for _ in range(30):
            src = rng.randint(0, n_hosts - 1)
            dst = (src + rng.randint(1, n_hosts - 1)) % n_hosts
            sim.add_host_flow(
                src, dst, rng.randint(1024, 512 * 1024),
                start_ns=rng.randint(0, MS),
                sport=rng.randint(49152, 65535),
            )
        return sim.run()

    first, second = build_and_run(), build_and_run()
    if first is None:
        return
    assert first.fingerprint() == second.fingerprint()
    assert first.n_completed == 30


@given(n_flows=st.integers(1, 12), size_kb=st.integers(1, 4096))
@settings(max_examples=40, deadline=None)
def test_equal_split_completion_time(n_flows, size_kb):
    sim = FlowSim({"l": gbps(40) * EFFICIENCY}, rate_update_interval_ns=0)
    size = size_kb * 1024
    for _ in range(n_flows):
        sim.add_flow(("l",), size)
    run = sim.run()
    expected_ns = n_flows * size * 8e9 / (gbps(40) * EFFICIENCY)
    assert run.n_completed == n_flows
    assert run.sim_ns == pytest.approx(expected_ns, rel=1e-6, abs=2)
    assert run.total_bytes == n_flows * size
