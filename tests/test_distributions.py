"""Shared workload distributions (workloads/distributions.py).

The size CDFs both simulation tiers sample from: construction
validation, inverse-transform sampling (determinism, support, one draw
per sample), analytic mean vs empirical mean, quantiles, and the duck
typing that lets the packet generators take a SizeCDF where they
historically took an int.
"""

import pytest

from repro.sim.rng import SeededRng
from repro.sim.units import KB, MB
from repro.workloads import (
    NAMED_CDFS,
    STORAGE_CDF,
    WEB_CDF,
    PoissonFlowArrivals,
    SizeCDF,
    interarrival_ns,
    resolve_size,
)


class TestSizeCdf:
    def test_construction_rejects_malformed_points(self):
        with pytest.raises(ValueError):
            SizeCDF("empty", [])
        with pytest.raises(ValueError):
            SizeCDF("no-top", [(KB, 0.5)])
        with pytest.raises(ValueError):
            SizeCDF("nonmono-size", [(2 * KB, 0.5), (KB, 1.0)])
        with pytest.raises(ValueError):
            SizeCDF("nonmono-prob", [(KB, 0.7), (2 * KB, 0.7), (4 * KB, 1.0)])

    @pytest.mark.parametrize("cdf", [WEB_CDF, STORAGE_CDF], ids=lambda c: c.name)
    def test_samples_deterministic_and_in_support(self, cdf):
        draws_a = [cdf.sample(SeededRng(5, "cdf")) for _ in range(1)]
        rng = SeededRng(5, "cdf")
        assert cdf.sample(rng) == draws_a[0]
        top = cdf.quantile(1.0)
        for _ in range(2000):
            size = cdf.sample(rng)
            assert 1 <= size <= top

    def test_one_uniform_draw_per_sample(self):
        class CountingRng:
            calls = 0

            def random(self):
                self.calls += 1
                return 0.42

        rng = CountingRng()
        WEB_CDF.sample(rng)
        assert rng.calls == 1

    @pytest.mark.parametrize("cdf", [WEB_CDF, STORAGE_CDF], ids=lambda c: c.name)
    def test_empirical_mean_matches_analytic(self, cdf):
        rng = SeededRng(9, "mean")
        n = 20000
        empirical = sum(cdf.sample(rng) for _ in range(n)) / n
        assert empirical == pytest.approx(cdf.mean(), rel=0.05)

    def test_quantiles_monotone_and_anchored(self):
        qs = [0.0, 0.1, 0.35, 0.5, 0.85, 0.99, 1.0]
        values = [STORAGE_CDF.quantile(q) for q in qs]
        assert values == sorted(values)
        assert STORAGE_CDF.quantile(1.0) == 32 * MB
        assert WEB_CDF.quantile(0.15) == 1 * KB
        with pytest.raises(ValueError):
            WEB_CDF.quantile(1.5)

    def test_named_registry(self):
        assert set(NAMED_CDFS) == {"web", "storage"}
        assert NAMED_CDFS["web"] is WEB_CDF


class TestGeneratorWiring:
    def test_resolve_size_duck_typing(self):
        rng = SeededRng(1, "resolve")
        assert resolve_size(4096, rng) == 4096
        assert resolve_size(WEB_CDF, rng) >= 1

    def test_interarrival_is_positive_integer_ns(self):
        rng = SeededRng(2, "gap")
        gaps = [interarrival_ns(rng, 10_000.0) for _ in range(200)]
        assert all(isinstance(gap, int) and gap >= 1 for gap in gaps)
        # ~10k/s -> mean gap ~100us.
        mean = sum(gaps) / len(gaps)
        assert 50_000 < mean < 200_000
        with pytest.raises(ValueError):
            interarrival_ns(rng, 0)

    def test_poisson_flow_arrivals_sequence(self):
        def build():
            rng = SeededRng(3, "arrivals")
            gen = PoissonFlowArrivals(
                rng, 100_000.0, WEB_CDF,
                pair_fn=lambda r: (r.randint(0, 3), r.randint(4, 7)),
            )
            return gen.draw(50, start_ns=1000)

        flows = build()
        assert flows == build()  # same seed, same sequence
        assert len(flows) == 50
        starts = [start for start, _s, _d, _b in flows]
        assert starts == sorted(starts) and starts[0] > 1000
        for _start, src, dst, size in flows:
            assert 0 <= src <= 3 and 4 <= dst <= 7 and size >= 1

    def test_periodic_incast_accepts_sampler(self):
        # The packet-level generator draws per-request sizes from the
        # CDF when given a sampler (and needs its rng to do it).
        from repro.workloads.generators import PeriodicIncast

        class FakeChannel:
            def __init__(self):
                self.sent = []

            def send(self, nbytes, on_delivered=None):
                self.sent.append(nbytes)

        class FakeSim:
            now = 0

            def schedule(self, delay, fn, *args):
                pass

        channels = [FakeChannel(), FakeChannel()]
        incast = PeriodicIncast(
            FakeSim(), channels, WEB_CDF, period_ns=10**6,
            rng=SeededRng(4, "incast"),
        )
        for channel in channels:
            incast._send_one(channel)
        sizes = [channel.sent[0] for channel in channels]
        assert all(size >= 1 for size in sizes)
        assert incast.offered_load_bps() == pytest.approx(
            2 * WEB_CDF.mean() * 8e9 / 10**6
        )

    def test_periodic_incast_sampler_without_rng_raises(self):
        from repro.workloads.generators import PeriodicIncast

        class FakeChannel:
            def send(self, nbytes, on_delivered=None):
                pass

        class FakeSim:
            now = 0

            def schedule(self, delay, fn, *args):
                pass

        incast = PeriodicIncast(FakeSim(), [], WEB_CDF, period_ns=10**6)
        with pytest.raises(ValueError):
            incast._send_one(FakeChannel())
