"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, Timer
from repro.sim.engine import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run_until_idle()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(5, order.append, tag)
    sim.run_until_idle()
    assert order == list(range(10))


def test_run_until_horizon_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, "at-horizon")
    sim.schedule(101, fired.append, "past-horizon")
    sim.run(until=100)
    assert fired == ["at-horizon"]
    assert sim.now == 100


def test_run_advances_clock_to_horizon_when_idle():
    sim = Simulator()
    sim.run(until=500)
    assert sim.now == 500


def test_back_to_back_runs_compose():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(300, fired.append, 2)
    sim.run(until=200)
    assert fired == [1]
    sim.run(until=400)
    assert fired == [1, 2]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run_until_idle()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until_idle()


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(50, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.at(10, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run_until_idle()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


def test_call_soon_fires_at_current_time_after_queued_peers():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.call_soon(order.append, "soon")

    sim.schedule(10, first)
    sim.schedule(10, order.append, "second")
    sim.run_until_idle()
    assert order == ["first", "second", "soon"]


def test_max_events_stops_runaway_loop():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    fired = sim.run_until_idle(max_events=1000)
    assert fired == 1000


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_pending_counts_live_events():
    sim = Simulator()
    keep = sim.schedule(10, lambda: None)
    drop = sim.schedule(20, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    assert keep.time == 10


def test_events_fired_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1, lambda: None)
    sim.run_until_idle()
    assert sim.events_fired == 7


def test_cancelled_events_do_not_accumulate_in_heap():
    # Regression: cancelled events used to stay in the heap as tombstones
    # until their deadline, so a schedule/cancel loop (every retransmission
    # timer restart does this) grew the heap without bound.
    sim = Simulator()
    sim.schedule(1_000_000, lambda: None)  # one live far-future event
    for _ in range(10_000):
        sim.schedule(500, lambda: None).cancel()
    assert sim.pending == 1
    assert sim._stored < 1000  # tombstones compacted away, not retained


def test_compaction_preserves_firing_order():
    sim = Simulator()
    fired = []
    live = []
    for tag in range(200):
        live.append(sim.schedule(tag * 3 + 7, fired.append, tag))
    # Interleave enough cancels to force several compactions.
    for _ in range(2000):
        sim.schedule(10_000, lambda: None).cancel()
    sim.run_until_idle()
    assert fired == list(range(200))


def test_cancel_after_fire_keeps_accounting_sane():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    sim.run_until_idle()
    event.cancel()  # a no-op: already fired
    assert sim._cancelled == 0
    assert sim.pending == 0


def test_pending_exact_across_mixed_cancels():
    sim = Simulator()
    events = [sim.schedule(100 + i, lambda: None) for i in range(50)]
    for event in events[::2]:
        event.cancel()
    assert sim.pending == 25
    sim.run_until_idle()
    assert sim.pending == 0


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.run_until_idle()
        assert fired == [100]

    def test_restart_resets_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.schedule(50, timer.start, 100)
        sim.run_until_idle()
        assert fired == [150]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.schedule(10, timer.cancel)
        sim.run_until_idle()
        assert fired == []

    def test_armed_and_deadline(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        assert timer.deadline is None
        timer.start(42)
        assert timer.armed
        assert timer.deadline == 42
        sim.run_until_idle()
        assert not timer.armed

    def test_extend_to_only_moves_deadline_later(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        timer.extend_to(50)  # earlier: ignored
        assert timer.deadline == 100
        timer.extend_to(200)
        assert timer.deadline == 200
        sim.run_until_idle()
        assert fired == [200]

    def test_extend_to_arms_idle_timer(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.extend_to(75)
        sim.run_until_idle()
        assert fired == [75]

    def test_timer_can_rearm_itself_from_callback(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: None)

        def periodic():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(10)

        timer._callback = periodic
        timer.start(10)
        sim.run_until_idle()
        assert fired == [10, 20, 30]
