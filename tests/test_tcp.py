"""Tests for the TCP baseline: reliability, congestion response, kernel
and CPU models."""

import pytest

from repro.sim import SeededRng, Simulator
from repro.sim.units import KB, MB, MS, US, gbps
from repro.tcp import CpuModel, KernelModel, TcpConfig, connect_tcp_pair
from repro.topo import single_switch


@pytest.fixture
def topo():
    return single_switch(n_hosts=3).boot()


def make_pair(topo, i=0, j=1, **kwargs):
    rng = SeededRng(5, "tcp-test")
    return connect_tcp_pair(topo.hosts[i], topo.hosts[j], rng, **kwargs)


class TestKernelModel:
    def test_latency_positive_and_heavy_tailed(self):
        rng = SeededRng(1, "kern")
        kernel = KernelModel(rng, spike_probability=0.01)
        samples = [kernel.sample_ns() for _ in range(20000)]
        assert min(samples) > 0
        median = sorted(samples)[len(samples) // 2]
        assert 5 * US < median < 50 * US
        assert max(samples) > 1 * MS  # spikes exist

    def test_no_spikes_when_disabled(self):
        rng = SeededRng(1, "kern")
        kernel = KernelModel(rng, spike_probability=0.0)
        samples = [kernel.sample_ns() for _ in range(5000)]
        assert max(samples) < 1 * MS


class TestCpuModel:
    def test_paper_send_receive_numbers(self):
        # Section 1: 40 Gb/s, 8 connections, 32-core E5-2690: 6% to send,
        # 12% to receive.
        cpu = CpuModel()
        assert cpu.send_cpu_fraction(gbps(40)) == pytest.approx(0.06, rel=0.05)
        assert cpu.recv_cpu_fraction(gbps(40)) == pytest.approx(0.12, rel=0.05)

    def test_scales_linearly_with_rate(self):
        cpu = CpuModel()
        assert cpu.send_cpu_fraction(gbps(20)) == pytest.approx(
            cpu.send_cpu_fraction(gbps(40)) / 2, rel=0.01
        )

    def test_rdma_is_free(self):
        assert CpuModel.rdma_cpu_fraction(gbps(40)) == 0.0


class TestTcpTransfer:
    def test_message_delivered(self, topo):
        conn_a, conn_b = make_pair(topo)
        latencies = []
        conn_a.send_message(64 * KB, on_delivered=latencies.append)
        topo.sim.run(until=topo.sim.now + 50 * MS)
        assert len(latencies) == 1
        assert latencies[0] > 0

    def test_large_transfer_completes(self, topo):
        conn_a, conn_b = make_pair(topo)
        done = []
        conn_a.send_message(4 * MB, on_delivered=done.append)
        topo.sim.run(until=topo.sim.now + 200 * MS)
        assert done
        assert conn_b.stats.messages_delivered == 1

    def test_multiple_messages_in_order(self, topo):
        conn_a, conn_b = make_pair(topo)
        order = []
        for i in range(4):
            conn_a.send_message(32 * KB, on_delivered=lambda lat, i=i: order.append(i))
        topo.sim.run(until=topo.sim.now + 100 * MS)
        assert order == [0, 1, 2, 3]

    def test_bidirectional(self, topo):
        conn_a, conn_b = make_pair(topo)
        got = []
        conn_a.send_message(100 * KB, on_delivered=lambda lat: got.append("a"))
        conn_b.send_message(100 * KB, on_delivered=lambda lat: got.append("b"))
        topo.sim.run(until=topo.sim.now + 100 * MS)
        assert sorted(got) == ["a", "b"]

    def test_latency_includes_kernel_crossings(self, topo):
        # A one-MSS message's latency is dominated by two kernel
        # traversals (~tens of us), far above the ~1 us of wire time.
        conn_a, conn_b = make_pair(topo)
        latencies = []
        conn_a.send_message(1000, on_delivered=latencies.append)
        topo.sim.run(until=topo.sim.now + 50 * MS)
        assert latencies[0] > 10 * US


class TestTcpLossRecovery:
    def _lossy(self, topo, rate):
        link = topo.fabric.links[0]
        link.loss_rate = rate
        link._loss_rng = SeededRng(11, "tcploss")

    def test_fast_retransmit_recovers(self, topo):
        self._lossy(topo, 0.01)
        conn_a, conn_b = make_pair(topo)
        done = []
        conn_a.send_message(2 * MB, on_delivered=done.append)
        topo.sim.run(until=topo.sim.now + 500 * MS)
        assert done
        assert conn_a.stats.retransmits > 0

    def test_rto_fires_on_total_blackout(self, topo):
        conn_a, conn_b = make_pair(topo)
        done = []
        conn_a.send_message(64 * KB, on_delivered=done.append)
        link = topo.fabric.links[0]
        link.set_down()
        topo.sim.run(until=topo.sim.now + 100 * MS)
        assert conn_a.stats.rtos >= 1
        assert not done
        link.set_up()
        topo.sim.run(until=topo.sim.now + 500 * MS)
        assert done

    def test_cwnd_halves_on_fast_retransmit(self, topo):
        self._lossy(topo, 0.02)
        conn_a, conn_b = make_pair(topo)
        conn_a.send_message(4 * MB)
        topo.sim.run(until=topo.sim.now + 100 * MS)
        assert conn_a.stats.fast_retransmits > 0

    def test_drop_recovery_dominates_latency_tail(self, topo):
        # The figure 6 mechanism: without drops latency is ~kernel-bound;
        # with drops the tail inflates to RTO scale (>= 5 ms min RTO).
        def run(loss):
            t = single_switch(n_hosts=2).boot()
            if loss:
                # Drop a burst of consecutive segments so fast retransmit
                # cannot always save the day.
                state = {"n": 0}

                def dropper(packet):
                    if packet.is_tcp and packet.payload_bytes > 0:
                        state["n"] += 1
                        return state["n"] % 97 < 4
                    return False

                t.tor.ingress_drop_filter = dropper
            conn_a, conn_b = make_pair(t)
            latencies = []
            done_count = [0]

            def next_message(lat=None):
                if lat is not None:
                    latencies.append(lat)
                if done_count[0] < 60:
                    done_count[0] += 1
                    conn_a.send_message(32 * KB, on_delivered=next_message)

            next_message()
            t.sim.run(until=t.sim.now + 2000 * MS)
            return max(latencies) if latencies else None

        clean = run(False)
        lossy = run(True)
        assert clean is not None and lossy is not None
        assert lossy > clean
        assert lossy >= 4 * MS  # RTO-scale pain
