"""Unit tests for unit helpers."""

import pytest

from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MS,
    SEC,
    US,
    bits_to_bytes,
    bytes_to_bits,
    fmt_rate,
    fmt_time,
    gbps,
    propagation_delay_ns,
    serialization_delay_ns,
)


def test_time_constants():
    assert US == 1_000
    assert MS == 1_000_000
    assert SEC == 1_000_000_000


def test_size_constants():
    assert KB == 1024
    assert MB == 1024 * 1024


def test_gbps():
    assert gbps(40) == 40 * GBPS
    assert gbps(0.5) == 500_000_000


def test_bit_byte_conversions():
    assert bytes_to_bits(10) == 80
    assert bits_to_bytes(80) == 10
    assert bits_to_bytes(81) == 11  # rounds up


def test_serialization_delay_paper_frame():
    # The paper's RoCEv2 frame is 1086 bytes; at 40 Gb/s that is
    # 8688 bits / 40 bits-per-ns = 217.2 ns -> ceil -> 218 ns.
    assert serialization_delay_ns(1086, gbps(40)) == 218


def test_serialization_delay_rounds_up():
    # 1 byte at 1 Gb/s = exactly 8 ns: no rounding.
    assert serialization_delay_ns(1, gbps(1)) == 8
    # 1 byte at 3 Gb/s = 2.67 ns -> 3 ns.
    assert serialization_delay_ns(1, gbps(3)) == 3


def test_serialization_delay_rejects_zero_rate():
    with pytest.raises(ValueError):
        serialization_delay_ns(100, 0)


def test_propagation_delay_paper_distances():
    # Section 2: servers ~2 m from ToR, Leaf-Spine up to 300 m.
    assert propagation_delay_ns(2) == 10
    assert propagation_delay_ns(300) == 1500


def test_propagation_delay_rejects_negative():
    with pytest.raises(ValueError):
        propagation_delay_ns(-1)


def test_fmt_time():
    assert fmt_time(500) == "500ns"
    assert fmt_time(1500) == "1.500us"
    assert fmt_time(2 * MS) == "2.000ms"
    assert fmt_time(3 * SEC) == "3.000s"


def test_fmt_rate():
    assert fmt_rate(gbps(40)) == "40.00Gb/s"
    assert fmt_rate(350 * 1_000_000) == "350.00Mb/s"
    assert fmt_rate(999) == "999b/s"
