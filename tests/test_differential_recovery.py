"""Differential test: go-back-0 vs go-back-N under an injected 1/256 loss.

The section 4.1 livelock, phrased as a property of the *pair* of
recovery policies rather than of either alone: under the same
:class:`FaultPlan` (drop every packet whose IP ID ends 0xff, on both
server links), identical traffic, identical seeds --

* go-back-0 makes **zero** application progress: a 1 MB message is 1024
  packets, so a drop lands in every pass and every pass restarts;
* go-back-N completes messages despite the identical losses;
* and *neither* run breaks a runtime invariant -- the livelock is a
  transport pathology, not an accounting one.

Run alone with ``pytest -m faults``.
"""

import pytest

from repro.faults import FaultPlan, install_default_auditors
from repro.rdma import GoBack0, GoBackN, QpConfig, connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import MB, MS, US
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel

pytestmark = pytest.mark.faults

MESSAGE_BYTES = 1 * MB  # 1024 packets: > 256, so go-back-0 cannot finish a pass


def _run(recovery, duration_ns=6 * MS, seed=29):
    topo = single_switch(n_hosts=2, seed=seed).boot()
    registry = install_default_auditors(topo.fabric).start()
    plan = (
        FaultPlan("livelock-loss", seed=seed)
        .drop(("S0", "T0"), match="ip-id-ff")
        .drop(("S1", "T0"), match="ip-id-ff")
    )
    plan.apply(topo.fabric)
    rng = SeededRng(seed, "diff")
    config = QpConfig(recovery=recovery, rto_ns=200 * US)
    qp, _ = connect_qp_pair(
        topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=config
    )
    sender = ClosedLoopSender(RdmaChannel(qp), MESSAGE_BYTES).start()
    start = topo.sim.now
    topo.sim.run(until=start + duration_ns)
    drops = sum(link.injected_drops for link in topo.fabric.links)
    return sender, qp, drops, registry


class TestDifferentialRecovery:
    def test_go_back_0_livelocks_where_go_back_n_progresses(self):
        sender0, qp0, drops0, registry0 = _run(GoBack0())
        sendern, qpn, dropsn, registryn = _run(GoBackN())

        # Both runs really suffered the injected loss and burned the wire.
        assert drops0 > 0 and dropsn > 0
        assert qp0.stats.data_packets_sent > 2000

        # The differential: zero progress vs completed messages.
        assert sender0.completed_bytes == 0
        assert sender0.completed_messages == 0
        assert sendern.completed_bytes >= MESSAGE_BYTES
        assert sendern.completed_messages >= 1

        # go-back-0's pathology is retransmission, not starvation: it
        # keeps resending from PSN 0 at full rate.
        assert qp0.stats.retransmitted_packets > qpn.stats.retransmitted_packets

    def test_neither_policy_breaks_an_invariant(self):
        # The livelock wastes bandwidth while every invariant holds --
        # which is exactly why it went unnoticed until application
        # metrics flatlined.  (go-back-0's PSN rewinds are declared via
        # responder_restarts, so the monotonicity auditor exempts them.)
        _, _, _, registry0 = _run(GoBack0(), duration_ns=4 * MS)
        _, _, _, registryn = _run(GoBackN(), duration_ns=4 * MS)
        assert registry0.clean, registry0.summary()
        assert registryn.clean, registryn.summary()
        assert registry0.ticks >= 30 and registryn.ticks >= 30
