"""The flow-level simulator (src/repro/flowsim/).

The `flowsim` lane: exact-mode steady state against the max-min
reference, byte-identical determinism, scale-mode (interval batching)
agreement with exact mode, the first-order DCQCN and PFC models, and
the analytic topologies' path discipline.  The datacenter-scale
acceptance run (4096 hosts, 50k+ flows) lives in CI's flowsim smoke
job, not here.

Run alone with ``pytest -m flowsim``.
"""

import pytest

from repro.dcqcn import DcqcnConfig
from repro.flows.maxmin import max_min_allocation
from repro.flowsim import (
    EFFICIENCY,
    FlowSim,
    clos_flow,
    dcqcn_capacity_factor,
    pfc_link_model,
    single_switch_flow,
    two_tier_flow,
)
from repro.sim.rng import SeededRng
from repro.sim.units import MS, US, gbps

pytestmark = pytest.mark.flowsim


def drive_random_flows(sim, topology, n_flows, seed, max_bytes=256 * 1024,
                       window_ns=2 * MS):
    """Seeded random pair traffic; returns the flow ids."""
    rng = SeededRng(seed, "test/flowsim")
    n_hosts = topology.n_hosts
    ids = []
    for _ in range(n_flows):
        src = rng.randint(0, n_hosts - 1)
        dst = (src + rng.randint(1, n_hosts - 1)) % n_hosts
        ids.append(
            sim.add_host_flow(
                src, dst, rng.randint(1024, max_bytes),
                start_ns=rng.randint(0, window_ns),
                sport=rng.randint(49152, 65535),
            )
        )
    return ids


class TestExactModeSteadyState:
    def test_matches_maxmin_reference_on_contended_switch(self):
        topology = single_switch_flow(n_hosts=6)
        sim = FlowSim.from_topology(topology)  # exact mode
        permanent = 10 ** 15
        # 3-to-1 incast into host 0 plus two bystander pairs.
        specs = [(1, 0), (2, 0), (3, 0), (4, 5), (5, 4)]
        ids = [sim.add_host_flow(s, d, permanent) for s, d in specs]
        sim.run(until_ns=1)
        caps = topology.goodput_capacities()
        paths = [topology.path(s, d, 49152) for s, d in specs]
        reference = max_min_allocation(caps, paths)
        rates = sim.current_rates()
        for fid, expected in zip(ids, reference):
            assert rates[fid] == pytest.approx(expected, rel=1e-9)

    def test_completion_time_of_equal_split(self):
        # n identical flows on one link: each gets cap/n, finishing at
        # total_bytes * 8 / cap (within integer-ns ceiling).
        topology = single_switch_flow(n_hosts=2)
        sim = FlowSim.from_topology(topology)
        size = 1024 * 1024
        n = 4
        for _ in range(n):
            sim.add_host_flow(0, 1, size)
        run = sim.run()
        cap = gbps(40) * EFFICIENCY
        expected_ns = n * size * 8e9 / cap
        assert run.n_completed == n
        assert run.sim_ns == pytest.approx(expected_ns, rel=1e-6)
        # All four share the path group and finish together.
        assert run.max_fct_ns == run.sim_ns

    def test_rates_readjust_after_completion(self):
        topology = single_switch_flow(n_hosts=2)
        sim = FlowSim.from_topology(topology)
        short = sim.add_host_flow(0, 1, 64 * 1024)
        long = sim.add_host_flow(0, 1, 10 ** 12)
        cap = gbps(40) * EFFICIENCY
        sim.run(until_ns=1)
        assert sim.current_rates()[long] == pytest.approx(cap / 2, rel=1e-9)
        # Run past the short flow's finish: the survivor takes the link.
        sim.run(until_ns=1 * MS)
        rates = sim.current_rates()
        assert short not in rates
        assert rates[long] == pytest.approx(cap, rel=1e-9)


class TestDeterminism:
    def build_and_run(self, interval_ns):
        topology = two_tier_flow(n_tors=3, hosts_per_tor=4, n_leaves=2)
        sim = FlowSim.from_topology(topology, rate_update_interval_ns=interval_ns)
        drive_random_flows(sim, topology, n_flows=200, seed=7)
        return sim.run()

    def test_identical_fingerprints_across_runs(self):
        first = self.build_and_run(0)
        second = self.build_and_run(0)
        assert first.fingerprint() == second.fingerprint()
        assert first.n_completed == 200

    def test_fingerprint_is_integer_only(self):
        run = self.build_and_run(0)
        assert all(isinstance(v, int) for v in run.fingerprint())
        assert run.to_dict()["completion_crc"] == run.completion_crc

    def test_scale_mode_agrees_with_exact_mode(self):
        exact = self.build_and_run(0)
        batched = self.build_and_run(100 * US)
        # Same completions; the interval approximation shifts finish
        # times by at most a few update periods on a millisecond run.
        assert batched.n_completed == exact.n_completed
        assert batched.total_bytes == exact.total_bytes
        assert batched.sim_ns == pytest.approx(exact.sim_ns, rel=0.05)
        assert batched.n_recomputes < exact.n_recomputes


class TestCongestionModels:
    def test_dcqcn_factor_default_and_config(self):
        assert dcqcn_capacity_factor() == pytest.approx(1.0 - 1.0 / 1024)
        assert dcqcn_capacity_factor(DcqcnConfig(g=1.0 / 16)) == pytest.approx(
            1.0 - 1.0 / 64
        )
        with pytest.raises(ValueError):
            dcqcn_capacity_factor(DcqcnConfig(g=0.0))

    def test_pfc_own_pause_fraction(self):
        caps = {"a": 10.0, "b": 10.0}
        residual, realized, pause = pfc_link_model(
            caps, [(("a", "b"), 20.0)]
        )
        # Overloaded 2:1 on both hops: half the offered rate delivered;
        # the tail link pauses at 1 - cap/demand = 0.5, and the feeder
        # combines its own 0.5 with the 0.5 it inherits downstream.
        assert realized == [pytest.approx(0.5)]
        assert pause["a"] == pytest.approx(0.75)
        assert pause["b"] == pytest.approx(0.5)
        # Delivered fixed bytes consume the links fully; responsive
        # traffic keeps only the floor.
        assert residual["a"] == pytest.approx(10.0 * 1e-3)

    def test_pfc_congestion_spreading_victim(self):
        # An incast tree saturating link "hot" pauses its upstream
        # feeder "up"; a responsive flow crossing only "up" (never
        # oversubscribed itself) loses capacity -- the figure 8 victim.
        caps = {"up": 10.0, "hot": 10.0, "side": 10.0}
        residual, _realized, pause = pfc_link_model(
            caps, [(("up", "hot"), 30.0)]
        )
        assert pause["hot"] == pytest.approx(2.0 / 3.0)
        # "up" carries 10 offered (its share of the tree after min-cap
        # delivery) but inherits the downstream pause.
        assert residual["up"] < caps["up"] / 2
        assert "side" not in residual  # untouched links stay unscaled

    def test_fixed_flow_throttles_responsive_sharer_in_engine(self):
        topology = single_switch_flow(n_hosts=4)
        sim = FlowSim.from_topology(topology)
        cap = gbps(40) * EFFICIENCY
        # Unresponsive 2x-overload into host 0; a responsive flow shares
        # the victim's sender uplink 1->T0.
        sim.add_host_flow(1, 0, 10 ** 15, fixed_rate_bps=cap)
        sim.add_host_flow(2, 0, 10 ** 15, fixed_rate_bps=cap)
        victim = sim.add_host_flow(1, 3, 10 ** 15)
        sim.run(until_ns=1)
        victim_rate = sim.current_rates()[victim]
        assert victim_rate < 0.6 * cap
        assert sim.pause_fractions  # the PFC model engaged

    def test_fixed_flow_below_capacity_completes_on_schedule(self):
        topology = single_switch_flow(n_hosts=2)
        sim = FlowSim.from_topology(topology)
        rate = gbps(10)
        size = 1250 * 1000  # 1 ms at 10 Gb/s
        sim.add_host_flow(0, 1, size, fixed_rate_bps=rate)
        run = sim.run()
        assert run.n_completed == 1
        assert run.sim_ns == pytest.approx(size * 8e9 / rate, rel=1e-6)


class TestTopologies:
    @pytest.mark.parametrize(
        "topology",
        [
            single_switch_flow(n_hosts=4),
            two_tier_flow(n_tors=3, hosts_per_tor=2, n_leaves=2),
            clos_flow(n_podsets=2, tors_per_podset=2, hosts_per_tor=2,
                      leaves_per_podset=2, n_spines=4),
        ],
        ids=["single", "two_tier", "clos"],
    )
    def test_every_path_walks_existing_links_endpoint_to_endpoint(self, topology):
        rng = SeededRng(3, "test/paths")
        for _ in range(50):
            src = rng.randint(0, topology.n_hosts - 1)
            dst = (src + rng.randint(1, topology.n_hosts - 1)) % topology.n_hosts
            path = topology.path(src, dst, rng.randint(49152, 65535))
            assert path[0].startswith(topology.hosts[src] + ">")
            assert path[-1].endswith(">" + topology.hosts[dst])
            hops = [link.split(">") for link in path]
            for link, (a, b) in zip(path, hops):
                assert link in topology.links
            # Consecutive hops chain through shared devices.
            for (_a, b), (c, _d) in zip(hops, hops[1:]):
                assert b == c

    def test_clos_hop_counts(self):
        topology = clos_flow(n_podsets=2, tors_per_podset=2, hosts_per_tor=2,
                             leaves_per_podset=2, n_spines=4)
        hosts_per_podset = 4
        same_tor = topology.path(0, 1, 49152)
        assert len(same_tor) == 2
        same_podset = topology.path(0, 2, 49152)
        assert len(same_podset) == 4
        cross = topology.path(0, hosts_per_podset, 49152)
        assert len(cross) == 6

    def test_goodput_capacities_scale(self):
        topology = single_switch_flow(n_hosts=2, rate_bps=gbps(100))
        caps = topology.goodput_capacities(factor=0.5)
        assert all(
            cap == pytest.approx(gbps(100) * EFFICIENCY * 0.5)
            for cap in caps.values()
        )

    def test_self_flow_rejected(self):
        with pytest.raises(ValueError):
            single_switch_flow(n_hosts=2).path(1, 1, 49152)


class TestApiValidation:
    def test_add_flow_rejects_bad_specs(self):
        sim = FlowSim({"l": 1e9})
        with pytest.raises(ValueError):
            sim.add_flow((), 100)
        with pytest.raises(KeyError):
            sim.add_flow(("nope",), 100)
        with pytest.raises(ValueError):
            sim.add_flow(("l",), 0)
        sim.add_flow(("l",), 100, start_ns=500)
        sim.run()
        with pytest.raises(ValueError):
            sim.add_flow(("l",), 100, start_ns=0)  # in the past now

    def test_add_host_flow_needs_topology(self):
        with pytest.raises(ValueError):
            FlowSim({"l": 1e9}).add_host_flow(0, 1, 100)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            FlowSim({"l": 1e9}, rate_update_interval_ns=-1)

    def test_link_utilization_is_bounded(self):
        topology = two_tier_flow(n_tors=2, hosts_per_tor=4, n_leaves=2)
        sim = FlowSim.from_topology(topology)
        drive_random_flows(sim, topology, n_flows=60, seed=11,
                           max_bytes=10 ** 9)
        sim.run(until_ns=1 * MS)
        utilization = sim.link_utilization()
        assert utilization
        assert max(utilization.values()) <= 1.0 + 1e-9

    def test_active_flow_paths_tracks_live_flows(self):
        topology = single_switch_flow(n_hosts=2)
        sim = FlowSim.from_topology(topology)
        fid = sim.add_host_flow(0, 1, 10 ** 12)
        sim.run(until_ns=1)
        assert sim.active_flow_paths() == {fid: topology.path(0, 1, 49152)}
