"""Focused coverage: experiment plumbing, window/ack behaviour, fabric
aggregates, formatting helpers."""

import pytest

from repro.experiments.common import ExperimentResult, apply_ets_weights
from repro.net.port import DwrrScheduler
from repro.rdma import QpConfig, connect_qp_pair, post_send
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS
from repro.topo import single_switch


class TestExperimentResult:
    def test_format_table_alignment_and_content(self):
        result = ExperimentResult([
            {"name": "alpha", "value": 1.23456, "count": 10},
            {"name": "beta-long-name", "value": 2.0, "count": None},
        ])
        table = result.format_table()
        lines = table.splitlines()
        assert "name" in lines[1]
        assert "alpha" in table and "beta-long-name" in table
        assert "1.235" in table  # floats rendered to 3 places

    def test_format_table_empty(self):
        assert "(no rows)" in ExperimentResult([]).format_table()

    def test_to_csv_unions_columns(self, tmp_path):
        result = ExperimentResult([
            {"a": 1, "b": 2},
            {"a": 3, "c": 4},
        ])
        path = result.to_csv(str(tmp_path / "out.csv"))
        lines = open(path).read().splitlines()
        assert lines[0] == "a,b,c"
        assert len(lines) == 3

    def test_apply_ets_weights_installs_dwrr_everywhere(self):
        topo = single_switch(n_hosts=3).boot()
        apply_ets_weights(topo.fabric, {3: 4, 1: 1})
        for switch in topo.fabric.switches:
            for port in switch.ports:
                assert isinstance(port.scheduler, DwrrScheduler)
                assert port.scheduler.weight(3) == 4
                assert port.scheduler.weight(0) == 1  # default


class TestQpWindowAndAcks:
    def test_window_bounds_outstanding(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(91, "win")
        config = QpConfig(window_packets=8)
        qp, _ = connect_qp_pair(
            topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=config
        )
        post_send(qp, 1 * MB)
        # Sample outstanding repeatedly during the transfer.
        worst = 0
        for _ in range(50):
            topo.sim.run(until=topo.sim.now + 20_000)
            worst = max(worst, qp.outstanding_packets)
        assert worst <= 8

    def test_ack_coalescing_bounds_ack_count(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(92, "ack")
        config = QpConfig(ack_coalesce=16)
        qp, peer = connect_qp_pair(
            topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=config
        )
        post_send(qp, 1 * MB)  # 1024 packets
        topo.sim.run(until=topo.sim.now + 5 * MS)
        # One ACK per ~16 packets plus the last-segment ACK.
        assert peer.stats.acks_sent <= 1024 // 16 + 4
        assert peer.stats.acks_sent >= 1024 // 16

    def test_backlog_reporting(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(93, "bl")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        post_send(qp, 64 * KB)
        # The NIC pump may grab a couple of packets synchronously.
        assert 60 <= qp.backlog_packets <= 64
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert qp.backlog_packets == 0


class TestFabricAggregates:
    def test_total_pause_frames_spans_switches_and_nics(self):
        from repro.switch.buffer import BufferConfig
        from repro.workloads import ClosedLoopSender, RdmaChannel

        topo = single_switch(
            n_hosts=4, buffer_config=BufferConfig(alpha=None, xoff_static_bytes=32 * KB)
        ).boot()
        rng = SeededRng(94, "agg")
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, topo.hosts[0], rng)
            ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
        topo.sim.run(until=topo.sim.now + 5 * MS)
        assert topo.fabric.total_pause_frames() >= topo.tor.pause_frames_sent() > 0

    def test_switch_counters_total_drops(self):
        topo = single_switch(n_hosts=2).boot()
        topo.tor.counters.drops["filter"] = 3
        topo.tor.counters.drops["ttl"] = 2
        assert topo.tor.counters.total_drops >= 5

    def test_fabric_repr(self):
        topo = single_switch(n_hosts=2)
        assert "2 hosts" in repr(topo.fabric)


class TestReprSmoke:
    """Reprs are part of the debugging surface; they must not raise."""

    def test_device_layer_reprs(self):
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(95, "repr")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        post_send(qp, 4 * KB)
        topo.sim.run(until=topo.sim.now + 1 * MS)
        for obj in (
            topo.fabric,
            topo.tor,
            topo.tor.ports[0],
            topo.tor.buffer,
            topo.hosts[0],
            topo.hosts[0].nic.port,
            qp,
            topo.sim,
        ):
            assert repr(obj)

    def test_packet_and_header_reprs(self):
        from repro.packets import (
            Aeth,
            ArpPacket,
            BaseTransportHeader,
            BthOpcode,
            Ipv4Header,
            Packet,
            PfcPauseFrame,
            TcpHeader,
            UdpHeader,
            VlanTag,
        )

        objs = [
            VlanTag(pcp=3, vid=5),
            Ipv4Header(src=1, dst=2),
            UdpHeader(src_port=1, dst_port=2),
            TcpHeader(src_port=1, dst_port=2),
            BaseTransportHeader(opcode=BthOpcode.SEND_ONLY, dest_qp=1, psn=0),
            Aeth(syndrome=0),
            PfcPauseFrame.pause([3]),
            ArpPacket.request(1, 2, 3),
            Packet.pfc_pause(dst_mac=1, src_mac=2, pause=PfcPauseFrame.pause([0])),
        ]
        for obj in objs:
            assert repr(obj)
