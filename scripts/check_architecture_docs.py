#!/usr/bin/env python
"""Check that ARCHITECTURE.md's code references actually exist.

The paper-to-code map is only useful while it is true.  This script
extracts every path-shaped reference from ARCHITECTURE.md — module
paths like ``switch/pfc.py`` or ``core/deadlock.py`` (resolved under
``src/repro/``), package references like ``monitoring/``, and repo-level
files like ``examples/quickstart.py`` or ``docs/benchmarking.md`` — and
fails if any of them is missing from the tree.  CI runs it so a rename
or deletion cannot silently orphan the documentation.

Usage: python scripts/check_architecture_docs.py [path-to-ARCHITECTURE.md]
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: Where path references live: inline code spans and markdown link targets.
#: Prose slashes ("pause/resume", "p99/p99.9") are deliberately ignored.
_CODE_SPAN_RE = re.compile(r"`([^`]+)`")
_LINK_TARGET_RE = re.compile(r"\]\(([^)#]+)\)")

#: Anything that looks like a path: word/word/...ext or a trailing slash.
_PATH_RE = re.compile(r"\b[\w.-]+(?:/[\w.-]+)+(?:\.\w+|/)?|\b[\w-]+/(?=\s|$|[),.;:`])")

#: Top-level repo entries that ARCHITECTURE.md may reference directly.
_REPO_LEVEL_PREFIXES = (
    "examples/",
    "docs/",
    "benchmarks/",
    "scripts/",
    "src/",
    "tests/",
)


def _candidates(markdown):
    """Yield the distinct path-shaped strings referenced in the document."""
    # Fenced blocks are scanned whole (the layering diagram names real
    # directories) and removed first -- their triple backticks would
    # otherwise invert the inline-span pairing for the rest of the file.
    fenced = re.findall(r"```.*?```", markdown, flags=re.S)
    markdown = re.sub(r"```.*?```", "", markdown, flags=re.S)
    spans = fenced
    spans += [m.group(1) for m in _CODE_SPAN_RE.finditer(markdown)]
    spans += [m.group(1) for m in _LINK_TARGET_RE.finditer(markdown)]
    seen = set()
    for span in spans:
        if "://" in span:  # external URL
            continue
        for match in _PATH_RE.finditer(span):
            path = match.group(0).rstrip(".,;:")
            if path and path not in seen:
                seen.add(path)
                yield path


def _exists(path):
    """Resolve one reference against the tree; True when it exists."""
    if path.startswith(_REPO_LEVEL_PREFIXES) or path.endswith(".md"):
        return os.path.exists(os.path.join(REPO_ROOT, path.rstrip("/")))
    # Bare packages like "monitoring/" and modules like "switch/pfc.py"
    # live under src/repro/.
    target = os.path.join(SRC_ROOT, path.rstrip("/"))
    if os.path.exists(target):
        return True
    # "tracing.py"-style single-file references never match _PATH_RE, so
    # a two-component miss may still be a repo-level path (e.g. a
    # directory listing in a code block).
    return os.path.exists(os.path.join(REPO_ROOT, path.rstrip("/")))


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    doc_path = argv[0] if argv else os.path.join(REPO_ROOT, "ARCHITECTURE.md")
    with open(doc_path) as handle:
        markdown = handle.read()

    checked = 0
    missing = []
    for path in _candidates(markdown):
        checked += 1
        if not _exists(path):
            missing.append(path)

    doc_name = os.path.basename(doc_path)
    if missing:
        print("%s references %d missing path(s):" % (doc_name, len(missing)))
        for path in sorted(missing):
            print("  MISSING  %s" % path)
        return 1
    print(
        "%s: all %d referenced paths exist under %s"
        % (doc_name, checked, REPO_ROOT)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
