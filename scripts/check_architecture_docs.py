#!/usr/bin/env python
"""Check that the documentation set and the tree agree.

The paper-to-code map is only useful while it is true.  Three checks,
all run by CI:

1. **References exist** — every path-shaped reference in
   ARCHITECTURE.md (module paths like ``switch/pfc.py`` resolved under
   ``src/repro/``, package references like ``monitoring/``, repo-level
   files like ``examples/quickstart.py`` or ``docs/benchmarking.md``)
   must exist in the tree, so a rename or deletion cannot silently
   orphan the documentation.
2. **The docs index is complete** — every markdown file under
   ``docs/`` must be linked from ``docs/README.md``, so a new handbook
   cannot land undiscoverable.
3. **The architecture map is complete** — every package under
   ``src/repro/`` must be mentioned in ARCHITECTURE.md, so a new
   subsystem cannot land unmapped.

Usage: python scripts/check_architecture_docs.py            # all checks
       python scripts/check_architecture_docs.py SOME.md    # check 1 only,
                                                            # on SOME.md
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: Where path references live: inline code spans and markdown link targets.
#: Prose slashes ("pause/resume", "p99/p99.9") are deliberately ignored.
_CODE_SPAN_RE = re.compile(r"`([^`]+)`")
_LINK_TARGET_RE = re.compile(r"\]\(([^)#]+)\)")

#: Anything that looks like a path: word/word/...ext or a trailing slash.
_PATH_RE = re.compile(r"\b[\w.-]+(?:/[\w.-]+)+(?:\.\w+|/)?|\b[\w-]+/(?=\s|$|[),.;:`])")

#: Top-level repo entries that ARCHITECTURE.md may reference directly.
_REPO_LEVEL_PREFIXES = (
    "examples/",
    "docs/",
    "benchmarks/",
    "scripts/",
    "src/",
    "tests/",
)


def _candidates(markdown):
    """Yield the distinct path-shaped strings referenced in the document."""
    # Fenced blocks are scanned whole (the layering diagram names real
    # directories) and removed first -- their triple backticks would
    # otherwise invert the inline-span pairing for the rest of the file.
    fenced = re.findall(r"```.*?```", markdown, flags=re.S)
    markdown = re.sub(r"```.*?```", "", markdown, flags=re.S)
    spans = fenced
    spans += [m.group(1) for m in _CODE_SPAN_RE.finditer(markdown)]
    spans += [m.group(1) for m in _LINK_TARGET_RE.finditer(markdown)]
    seen = set()
    for span in spans:
        if "://" in span:  # external URL
            continue
        for match in _PATH_RE.finditer(span):
            path = match.group(0).rstrip(".,;:")
            if path and path not in seen:
                seen.add(path)
                yield path


def _exists(path):
    """Resolve one reference against the tree; True when it exists."""
    if path.startswith(_REPO_LEVEL_PREFIXES) or path.endswith(".md"):
        return os.path.exists(os.path.join(REPO_ROOT, path.rstrip("/")))
    # Bare packages like "monitoring/" and modules like "switch/pfc.py"
    # live under src/repro/.
    target = os.path.join(SRC_ROOT, path.rstrip("/"))
    if os.path.exists(target):
        return True
    # "tracing.py"-style single-file references never match _PATH_RE, so
    # a two-component miss may still be a repo-level path (e.g. a
    # directory listing in a code block).
    return os.path.exists(os.path.join(REPO_ROOT, path.rstrip("/")))


def check_references(doc_path):
    """Check 1: every path-shaped reference in ``doc_path`` exists."""
    with open(doc_path) as handle:
        markdown = handle.read()

    checked = 0
    missing = []
    for path in _candidates(markdown):
        checked += 1
        if not _exists(path):
            missing.append(path)

    doc_name = os.path.basename(doc_path)
    if missing:
        print("%s references %d missing path(s):" % (doc_name, len(missing)))
        for path in sorted(missing):
            print("  MISSING  %s" % path)
        return 1
    print(
        "%s: all %d referenced paths exist under %s"
        % (doc_name, checked, REPO_ROOT)
    )
    return 0


def check_docs_index():
    """Check 2: every markdown file under docs/ is linked from the index."""
    docs_dir = os.path.join(REPO_ROOT, "docs")
    index_path = os.path.join(docs_dir, "README.md")
    if not os.path.exists(index_path):
        print("docs/README.md: MISSING (the documentation index)")
        return 1
    with open(index_path) as handle:
        targets = {
            os.path.normpath(m.group(1))
            for m in _LINK_TARGET_RE.finditer(handle.read())
        }
    unlinked = [
        name
        for name in sorted(os.listdir(docs_dir))
        if name.endswith(".md")
        and name != "README.md"
        and name not in targets
    ]
    if unlinked:
        print("docs/README.md does not link %d doc(s):" % len(unlinked))
        for name in unlinked:
            print("  UNLINKED  docs/%s" % name)
        return 1
    print(
        "docs/README.md: indexes all %d docs"
        % sum(1 for n in os.listdir(docs_dir)
              if n.endswith(".md") and n != "README.md")
    )
    return 0


def check_package_coverage():
    """Check 3: every src/repro package is mentioned in ARCHITECTURE.md."""
    with open(os.path.join(REPO_ROOT, "ARCHITECTURE.md")) as handle:
        markdown = handle.read()
    packages = sorted(
        name
        for name in os.listdir(SRC_ROOT)
        if os.path.isfile(os.path.join(SRC_ROOT, name, "__init__.py"))
    )
    unmapped = [name for name in packages if (name + "/") not in markdown]
    if unmapped:
        print("ARCHITECTURE.md does not mention %d package(s):"
              % len(unmapped))
        for name in unmapped:
            print("  UNMAPPED  src/repro/%s/" % name)
        return 1
    print("ARCHITECTURE.md: covers all %d src/repro packages"
          % len(packages))
    return 0


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        return check_references(argv[0])
    status = check_references(os.path.join(REPO_ROOT, "ARCHITECTURE.md"))
    status |= check_docs_index()
    status |= check_package_coverage()
    return status


if __name__ == "__main__":
    sys.exit(main())
