#!/usr/bin/env python
"""Run every example under the runtime invariant auditors, in parallel.

Each script in ``examples/`` installs the auditors itself (strict mode
for healthy scenarios; record mode with asserted expectations for the
pathology demos, where e.g. a deadlock is *supposed* to trip the pause
auditors and the fix is supposed to stay clean).  A demo whose audit
expectation fails exits nonzero, so this smoke test reduces to: run
them all, fail on the first bad exit code.

The examples are independent processes, so they ride the campaign
worker pool (:mod:`repro.campaign.pool`): one isolated subprocess per
example, fanned out over the machine's cores, with a per-example
timeout so a wedged demo cannot hang the smoke run.

Usage:  python scripts/audit_smoke.py [-j N] [--timeout S] [pattern ...]

Optional patterns filter by substring ("storm" runs only
storm_watchdogs.py).  Exit status is the number of failing examples.
"""

import argparse
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO, "examples")
SRC = os.path.join(REPO, "src")

sys.path.insert(0, SRC)

from repro.campaign import pool  # noqa: E402  (path set up above)


def run_example(name):
    """Worker: run one example; returns (returncode, combined output)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    return proc.returncode, proc.stdout.decode("utf-8", "replace")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("patterns", nargs="*", help="substring filters on example names")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="parallel examples (default: cpu count)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-example wall-clock limit in seconds")
    args = parser.parse_args(argv[1:])

    scripts = sorted(
        name
        for name in os.listdir(EXAMPLES)
        if name.endswith(".py")
        and (not args.patterns or any(p in name for p in args.patterns))
    )
    if not scripts:
        print("no examples match %r" % (args.patterns,))
        return 2

    def on_event(event):
        if event["type"] != "done":
            return
        outcome = event["outcome"]
        if outcome.ok:
            returncode, _output = outcome.value
            verdict = "ok" if returncode == 0 else "FAIL (exit %d)" % returncode
        else:
            verdict = "FAIL (%s)" % outcome.status
        print("%-28s %-14s %5.1fs" % (outcome.task_id, verdict, outcome.duration_s))

    outcomes = pool.run_tasks(
        [(name, name) for name in scripts],
        run_example,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=0,
        on_event=on_event,
    )

    failures = []
    for name in scripts:
        outcome = outcomes[name]
        if not outcome.ok:
            failures.append(name)
            print("--- %s: %s\n%s" % (name, outcome.status, outcome.error or ""))
        else:
            returncode, output = outcome.value
            if returncode != 0:
                failures.append(name)
                sys.stdout.write(output)

    print(
        "\n%d/%d examples passed under audit" % (len(scripts) - len(failures), len(scripts))
    )
    return len(failures)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
