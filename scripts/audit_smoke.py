#!/usr/bin/env python
"""Run every example under the runtime invariant auditors.

Each script in ``examples/`` installs the auditors itself (strict mode
for healthy scenarios; record mode with asserted expectations for the
pathology demos, where e.g. a deadlock is *supposed* to trip the pause
auditors and the fix is supposed to stay clean).  A demo whose audit
expectation fails exits nonzero, so this smoke test reduces to: run
them all, fail on the first bad exit code.

Usage:  python scripts/audit_smoke.py [pattern ...]

Optional patterns filter by substring ("storm" runs only
storm_watchdogs.py).  Exit status is the number of failing examples.
"""

import os
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO, "examples")
SRC = os.path.join(REPO, "src")


def main(argv):
    patterns = argv[1:]
    scripts = sorted(
        name
        for name in os.listdir(EXAMPLES)
        if name.endswith(".py")
        and (not patterns or any(p in name for p in patterns))
    )
    if not scripts:
        print("no examples match %r" % (patterns,))
        return 2

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    failures = []
    for name in scripts:
        path = os.path.join(EXAMPLES, name)
        started = time.time()
        proc = subprocess.run(
            [sys.executable, path],
            env=env,
            cwd=REPO,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        verdict = "ok" if proc.returncode == 0 else "FAIL (exit %d)" % proc.returncode
        print("%-28s %-14s %5.1fs" % (name, verdict, time.time() - started))
        if proc.returncode != 0:
            failures.append(name)
            sys.stdout.write(proc.stdout.decode("utf-8", "replace"))

    print(
        "\n%d/%d examples passed under audit" % (len(scripts) - len(failures), len(scripts))
    )
    return len(failures)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
