"""E4 bench -- figure 6: RDMA vs TCP latency percentiles.

Paper: p99 90 us (RDMA) vs 700 us (TCP); TCP spikes to milliseconds;
even RDMA's p99.9 beats TCP's p99.  Mechanisms: kernel stack overhead +
occasional incast drops for TCP, both eliminated by RDMA.
"""

from repro.experiments import run_latency_vs_tcp
from repro.sim.units import MS


def test_bench_latency_vs_tcp(report):
    result = report(run_latency_vs_tcp, duration_ns=100 * MS)
    rows = {r["transport"]: r for r in result.rows()}
    rdma = rows["rdma"]
    tcp = rows["tcp"]
    # RDMA's tail beats TCP's tail by a wide margin...
    assert rdma["p99_us"] * 3 < tcp["p99_us"]
    # ... and even RDMA's p99.9 beats TCP's p99 (the paper's headline).
    assert rdma["p99.9_us"] < tcp["p99_us"]
    # TCP spikes to milliseconds; RDMA never leaves the microsecond band.
    assert tcp["max_us"] > 1000
    assert rdma["max_us"] < 200
    # Zero losses in the lossless class, real losses in the lossy one.
    assert rdma["switch_drops_in_class"] == 0
    assert tcp["switch_drops_in_class"] > 0
