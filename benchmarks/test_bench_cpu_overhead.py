"""E10 bench -- section 1: CPU overhead of TCP vs RDMA.

Paper: 40 Gb/s over 8 TCP connections costs 6% (send) / 12% (receive)
of a 32-core Xeon E5-2690; RDMA moves the work to the NIC ("CPU
utilization close to 0%").
"""

import pytest

from repro.experiments import run_cpu_overhead


def test_bench_cpu_overhead(report):
    result = report(run_cpu_overhead)
    by_rate = {r["rate_gbps"]: r for r in result.rows()}
    at_40g = by_rate[40]
    assert at_40g["tcp_send_cpu_pct"] == pytest.approx(6.0, rel=0.05)
    assert at_40g["tcp_recv_cpu_pct"] == pytest.approx(12.0, rel=0.05)
    assert at_40g["rdma_cpu_pct"] == 0.0
    # Linear scaling: the planned 100 GbE upgrade makes TCP untenable.
    at_100g = by_rate[100]
    assert at_100g["tcp_recv_cpu_pct"] == pytest.approx(30.0, rel=0.05)
