"""Shared benchmark plumbing.

Every bench regenerates one of the paper's tables/figures via its
``repro.experiments`` runner, prints the regenerated rows (run pytest
with ``-s`` to see them), and asserts the paper's *shape* -- who wins,
by roughly what factor -- so a bench run doubles as a reproduction
check.  Wall-clock numbers reported by pytest-benchmark measure the
simulation cost itself.
"""

import pytest


def run_and_report(benchmark, runner, *args, **kwargs):
    """Benchmark ``runner`` once and print its table."""
    result = benchmark.pedantic(runner, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.format_table())
    return result


@pytest.fixture
def report(benchmark):
    def _report(runner, *args, **kwargs):
        return run_and_report(benchmark, runner, *args, **kwargs)

    return _report
