"""E6 bench -- figure 8: RDMA latency before/after saturating load.

Paper: p99 jumps 50 -> 400 us and p99.9 80 -> 800 us once the cross-ToR
load starts; the TCP class's p99 is unchanged (separate queues); no
packets drop.
"""

from repro.experiments import run_congestion_latency
from repro.sim.units import MS


def test_bench_congestion_latency(report):
    result = report(run_congestion_latency, phase_ns=30 * MS)
    by_phase = {r["phase"]: r for r in result.rows()}
    idle = by_phase["idle"]
    loaded = by_phase["loaded"]
    # Figure 8's jump: several-fold at both percentiles.
    assert loaded["rdma_p99_us"] > 4 * idle["rdma_p99_us"]
    assert loaded["rdma_p99.9_us"] > 4 * idle["rdma_p99.9_us"]
    # Lossless held: no drops anywhere.
    assert loaded["drops"] == 0
    # The TCP class rode a different queue: same band before and after.
    assert loaded["tcp_p99_us"] < 3 * idle["tcp_p99_us"]
