"""E11 bench -- section 2: PFC headroom and the two-class limit.

Paper: headroom scales with cable length (up to 300 m) and rate; the
9/12 MB shallow buffers afford only **two** lossless classes fabric-wide
at 40 GbE, not the eight PFC nominally supports.
"""

from repro.experiments import run_headroom


def test_bench_headroom(report):
    result = report(run_headroom)
    rows = result.rows()
    fabric = {r["rate_gbps"]: r for r in rows if r["switch"] == "fabric-wide"}
    # The paper's two lossless classes at 40 GbE.
    assert fabric[40]["lossless_classes"] == 2
    # Tighter at 100 GbE (the upgrade the paper plans).
    assert fabric[100]["lossless_classes"] < fabric[40]["lossless_classes"]
    # Headroom grows with cable length within a rate.
    leaf_40 = next(r for r in rows if r["rate_gbps"] == 40 and r["switch"] == "Leaf")
    tor_40 = next(r for r in rows if r["rate_gbps"] == 40 and r["switch"] == "ToR")
    assert leaf_40["headroom_per_pg_kb"] > tor_40["headroom_per_pg_kb"]
