"""E7 bench -- section 4.4: the slow-receiver symptom.

Paper: MTT misses stall the NIC receive pipeline and generate pause
frames with no real congestion anywhere.  2 MB pages eliminate the
misses; dynamic switch buffering absorbs the remaining pauses locally
instead of propagating them.
"""

from repro.experiments import run_slow_receiver
from repro.sim.units import MS


def test_bench_slow_receiver(report):
    result = report(run_slow_receiver, duration_ns=8 * MS)
    rows = {(r["page_size"], r["switch_buffer"]): r for r in result.rows()}
    bad = rows[("4KB", "static")]
    absorbed = rows[("4KB", "dynamic")]
    paged = rows[("2MB", "static")]
    # The symptom: thrashing MTT, NIC pausing its ToR, pause propagation.
    assert bad["mtt_miss_rate"] > 0.2
    assert bad["nic_pauses_per_ms"] > 5
    assert bad["tor_pauses_to_leaf"] > 0
    # Mitigation 1: 2 MB pages kill the misses and the pauses.
    assert paged["mtt_miss_rate"] < 0.01
    assert paged["nic_pauses_per_ms"] == 0
    # Mitigation 2: dynamic buffer absorbs the pauses locally.
    assert absorbed["nic_pauses_per_ms"] > 5  # NIC still pauses...
    assert absorbed["tor_pauses_to_leaf"] < bad["tor_pauses_to_leaf"] / 10
