"""E1 bench -- section 4.1's livelock experiment.

Paper: with a deterministic 1/256 drop, go-back-0 gives zero goodput at
full line rate for SEND, WRITE and READ; go-back-N restores throughput.
"""

from repro.experiments import run_livelock
from repro.sim.units import MS


def test_bench_livelock(report):
    result = report(run_livelock, duration_ns=10 * MS)
    rows = {(r["operation"], r["recovery"]): r for r in result.rows()}
    for operation in ("send", "write", "read"):
        gb0 = rows[(operation, "go-back-0")]
        gbn = rows[(operation, "go-back-n")]
        # Livelock: zero goodput, busy link.
        assert gb0["goodput_gbps"] == 0.0
        assert gb0["link_utilization"] > 0.9
        # The fix: substantial goodput despite the same drops.
        assert gbn["goodput_gbps"] > 20
        assert gbn["naks"] > 0
