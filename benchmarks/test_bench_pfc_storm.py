"""E3 bench -- figures 5 and 9: the NIC PFC pause frame storm.

Paper: one malfunctioning NIC blocks the whole fabric; the NIC-side and
switch-side watchdogs confine the damage to the victim.
"""

from repro.experiments import run_storm


def test_bench_pfc_storm(report):
    result = report(run_storm)
    by_mode = {r["watchdogs"]: r for r in result.rows()}
    off = by_mode["off"]
    on = by_mode["on"]
    # Unprotected: the storm blocks (essentially) everything.
    assert off["flows_blocked"] == off["flows_total"]
    assert off["storm_gbps_total"] < 0.05 * off["baseline_gbps_total"]
    # Watchdogs: only the victim's flows suffer; the fabric keeps moving.
    assert on["nic_watchdog_tripped"] >= 1
    assert on["switch_watchdog_trips"] >= 1
    assert on["flows_blocked"] <= 3
    assert on["storm_gbps_total"] > 0.5 * on["baseline_gbps_total"]
