"""E2 bench -- figure 4's PFC deadlock and the incomplete-ARP drop fix.

Paper: flooding + PFC forms a pause loop across T0, La, T1, Lb that
"does not go away even if we restart all the servers"; dropping lossless
packets on incomplete ARP entries prevents it.
"""

from repro.experiments import run_deadlock
from repro.sim.units import MS


def test_bench_deadlock(report):
    result = report(run_deadlock, duration_ns=8 * MS)
    by_scenario = {r["scenario"]: r for r in result.rows()}
    flooding = by_scenario["flooding"]
    fixed = by_scenario["arp-drop-fix"]
    assert flooding["deadlocked"]
    assert flooding["persists_after_restart"]
    assert flooding["switches_in_cycle"] == 4
    assert not fixed["deadlocked"]
    assert fixed["incomplete_arp_drops"] > 0
    # The healthy flow makes more progress once flooding cannot jam the
    # fabric.
    assert fixed["healthy_flow_messages"] > flooding["healthy_flow_messages"]
