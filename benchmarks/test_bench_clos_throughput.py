"""E5 bench -- figure 7: aggregate RDMA throughput in the 3-tier Clos.

Paper: 3072 saturating QPs over 128 leaf-spine 40 GbE links reach
3.0 Tb/s -- 60% of the 5.12 Tb/s capacity, limited by ECMP hash
collision -- with every server at ~8 Gb/s and zero drops.
"""

from repro.experiments import run_clos_throughput


def test_bench_clos_throughput(report):
    result = report(run_clos_throughput, seeds=(1, 2, 3))
    flow_rows = [r for r in result.rows() if r["utilization"] is not None]
    for row in flow_rows:
        assert 0.55 <= row["utilization"] <= 0.70
        assert 2.8 <= row["aggregate_tbps"] <= 3.6
        assert 7.0 <= row["per_server_gbps"] <= 9.5
        # The idealized max-min bound shows hash placement alone is not
        # the whole story -- the PFC-coupled fabric loses more.
        assert row["maxmin_utilization"] >= row["utilization"]
    packet_row = next(r for r in result.rows() if r["seed"] == "packet-level")
    assert packet_row["drops"] == 0  # "not a single packet was dropped"
