"""E8 bench -- figure 10: the alpha = 1/64 buffer misconfiguration.

Paper: two ToRs hosting chatty (incast-heavy) servers shipped with
alpha = 1/64 instead of 1/16; the tiny dynamic threshold turned routine
incast into pause storms that inflated latency fleet-wide.  Config
monitoring catches the drift; retuning alpha fixes it.
"""

from repro.experiments import run_buffer_misconfig
from repro.sim.units import MS


def test_bench_buffer_alpha(report):
    result = report(run_buffer_misconfig, duration_ns=25 * MS)
    by_alpha = {r["alpha"]: r for r in result.rows()}
    bad = by_alpha["1/64"]
    good = by_alpha["1/16"]
    # The misconfigured threshold is ~4x smaller and pauses pour out.
    assert bad["threshold_kb"] < good["threshold_kb"] / 3
    assert bad["tor_pauses_sent"] > 50
    assert good["tor_pauses_sent"] < bad["tor_pauses_sent"] / 10
    # Collateral damage on the latency-sensitive victim service.
    assert bad["victim_p99_us"] > 2 * good["victim_p99_us"]
    # The config-monitoring service flags exactly the drifted device.
    assert len(result.config_drifts) == 1
    assert result.config_drifts[0].field == "buffer_alpha"
