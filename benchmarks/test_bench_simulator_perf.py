"""Micro-benchmarks of the simulator itself.

Not paper reproductions: these measure the cost of the substrate so
regressions in simulation speed are caught (the experiment benches
above are only as usable as the simulator is fast).
"""

from repro.rdma import connect_qp_pair, post_send
from repro.sim import SeededRng, Simulator
from repro.sim.units import KB, MB, MS
from repro.topo import single_switch, two_tier


def test_bench_engine_event_throughput(benchmark):
    """Raw event dispatch: schedule+fire 100k chained events."""

    def run():
        sim = Simulator()
        remaining = [100_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run_until_idle()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 100_000


def test_bench_timer_rearm_throughput(benchmark):
    """Timer start/cancel churn: the RTO/watchdog/pause-expiry hot path.

    Every in-flight packet re-arms at least one Timer, so Timer.start is
    as hot as packet dispatch itself (this is what the __slots__ on
    Timer/Event buy back).
    """
    from repro.sim.timer import Timer

    def run():
        sim = Simulator()
        timer = Timer(sim, lambda: None, "rto")
        for _ in range(100_000):
            timer.start(5)
        sim.run_until_idle()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 1  # every re-arm cancelled the previous deadline


def test_bench_single_switch_packet_rate(benchmark):
    """End-to-end packets through NIC -> switch -> NIC (4 MB transfer)."""

    def run():
        topo = single_switch(n_hosts=2).boot()
        rng = SeededRng(1, "perf")
        qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], rng)
        wr = post_send(qp, 4 * MB)
        topo.sim.run(until=topo.sim.now + 3 * MS)
        assert wr.completed
        return qp.stats.data_packets_sent

    packets = benchmark(run)
    assert packets == 4096


def test_bench_fabric_boot(benchmark):
    """Topology construction + ARP convergence for a two-tier pod."""

    def run():
        topo = two_tier(n_tors=4, hosts_per_tor=8, n_leaves=4).boot()
        return len(topo.hosts)

    hosts = benchmark(run)
    assert hosts == 32


def test_bench_flow_model_full_scale(benchmark):
    """The figure 7 flow-level evaluation at full paper scale."""
    from repro.flows import ClosFlowModel

    def run():
        return ClosFlowModel(seed=1).run().utilization

    utilization = benchmark(run)
    assert 0.5 < utilization < 0.75
