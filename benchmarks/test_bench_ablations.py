"""Ablation benches: design choices swept beyond the paper's tables.

Each quantifies one of the paper's qualitative claims or section 8.1
future-work directions; see ``repro.experiments.ablations``.
"""

from repro.experiments import (
    run_alpha_sweep,
    run_cc_comparison,
    run_ecn_sweep,
    run_gbn_waste,
    run_interdc_distance,
    run_routing_models,
    run_tcp_flavours,
)


def test_bench_ablation_congestion_control(report):
    """None vs DCQCN vs TIMELY: "the lessons ... apply to the networks
    using TIMELY as well" -- both controllers keep queues short enough
    that PFC barely fires."""
    result = report(run_cc_comparison)
    rows = {r["cc"]: r for r in result.rows()}
    assert rows["dcqcn"]["pause_frames"] < rows["none"]["pause_frames"] / 10
    assert rows["timely"]["pause_frames"] < rows["none"]["pause_frames"] / 10
    assert rows["dcqcn"]["probe_p99_us"] < rows["none"]["probe_p99_us"]
    assert rows["timely"]["probe_p99_us"] < rows["none"]["probe_p99_us"]
    assert all(r["drops"] == 0 for r in result.rows())
    assert rows["dcqcn"]["ecn_marks"] > 0
    assert rows["timely"]["ecn_marks"] == 0  # RTT-driven, no ECN needed


def test_bench_ablation_alpha_sweep(report):
    """The section 6.2 parameter, swept: thresholds scale with alpha and
    the incident regime (alpha <= 1/32) storms while 1/16+ absorbs."""
    result = report(run_alpha_sweep)
    rows = {r["alpha"]: r for r in result.rows()}
    thresholds = [rows["1/%d" % d]["threshold_kb"] for d in (64, 32, 16, 8, 4)]
    assert thresholds == sorted(thresholds)
    assert rows["1/64"]["pause_frames"] > 1000
    assert rows["1/16"]["pause_frames"] == 0
    assert all(r["drops"] == 0 for r in result.rows())


def test_bench_ablation_ecn_kmin(report):
    """Section 2's rationale for DCQCN, quantified: earlier ECN marking
    (smaller Kmin) trades marks for pauses."""
    result = report(run_ecn_sweep)
    rows = result.rows()
    pauses = [r["pause_frames"] for r in rows]
    marks = [r["ecn_marks"] for r in rows]
    # Kmin ascending: pauses rise, marks fall.
    assert pauses == sorted(pauses)
    assert marks == sorted(marks, reverse=True)


def test_bench_ablation_gbn_waste(report):
    """Section 4.1's accepted cost: go-back-N wastes up to RTT x C per
    drop, so the waste grows with distance."""
    result = report(run_gbn_waste)
    rows = result.rows()
    waste = [r["waste_per_drop_packets"] for r in rows]
    assert waste == sorted(waste)
    assert waste[-1] > 10 * waste[0]
    # Goodput survives everywhere (no livelock), merely degrades.
    assert all(r["goodput_gbps"] > 20 for r in rows)


def test_bench_ablation_routing_models(report):
    """Section 8.1: per-packet spraying / MPTCP-class load balancing
    would recover the ~40% that ECMP hash collisions cost figure 7."""
    result = report(run_routing_models)
    rows = {r["model"]: r for r in result.rows()}
    deployed = rows["ecmp+pfc (deployed)"]
    future = rows["per-packet spraying (future work)"]
    assert 0.55 <= deployed["utilization"] <= 0.72
    assert future["utilization"] > 0.95


def test_bench_ablation_tcp_flavours(report):
    """Reno vs DCTCP in the lossy TCP class: reacting to CE marks before
    the queue overflows removes most incast drops (the fix the paper's
    companion ECN-tuning work [38] points toward)."""
    result = report(run_tcp_flavours)
    rows = {r["flavour"]: r for r in result.rows()}
    assert rows["dctcp"]["drops"] < rows["reno"]["drops"]
    assert rows["dctcp"]["ce_acks"] > 0
    assert rows["reno"]["ce_acks"] == 0
    assert rows["dctcp"]["delivered"] >= rows["reno"]["delivered"]


def test_bench_ablation_interdc_distance(report):
    """Section 8.1: "the hop-by-hop distance for PFC is limited to 300
    meters" -- headroom growth makes lossless inter-DC links absurd."""
    result = report(run_interdc_distance)
    rows = {r["distance_m"]: r for r in result.rows()}
    assert rows[300]["pgs_per_9mb_buffer"] >= 64  # a full switch works
    assert rows[100_000]["pgs_per_9mb_buffer"] <= 2  # one PG per buffer!
    assert rows[100_000]["headroom_per_pg_mb"] > 4
