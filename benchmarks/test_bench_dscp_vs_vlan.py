"""E9 bench -- section 3: DSCP-based vs VLAN-based PFC.

Paper: VLAN-based PFC forces trunk-mode server ports (breaking PXE boot)
and loses the PCP priority across subnet boundaries; DSCP-based PFC
fixes both with a data-packet-format change only.
"""

from repro.experiments import run_dscp_vs_vlan


def test_bench_dscp_vs_vlan(report):
    result = report(run_dscp_vs_vlan)
    by_design = {r["design"]: r for r in result.rows()}
    vlan = by_design["vlan-pfc"]
    dscp = by_design["dscp-pfc"]
    # Problem 1: PXE boot.
    assert vlan["pxe_boot"] == "broken-trunk-port"
    assert dscp["pxe_boot"] == "success"
    # Problem 2: priority across subnets -- RDMA gets dropped under
    # congestion once the PCP is gone; DSCP keeps it lossless.
    assert vlan["cross_subnet_rdma_drops"] > 0
    assert dscp["cross_subnet_rdma_drops"] == 0
    assert vlan["naks"] > 0
    assert dscp["naks"] == 0
    # The design validators agree with the experiments.
    assert vlan["validation_problems"] == 2
    assert dscp["validation_problems"] == 0
