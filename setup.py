"""Setup shim for environments whose setuptools predates PEP 660 editable
installs (the offline toolchain here lacks the ``wheel`` package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'RDMA over Commodity Ethernet at Scale' (SIGCOMM "
        "2016): RoCEv2/PFC/DCQCN packet-level simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
